#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/predicates.h"

namespace cloudjoin::geom {
namespace {

Geometry UnitSquare() {
  return Geometry::MakePolygon({{{0, 0}, {10, 0}, {10, 10}, {0, 10}}});
}

Geometry SquareWithHole() {
  return Geometry::MakePolygon(
      {{{0, 0}, {10, 0}, {10, 10}, {0, 10}}, {{3, 3}, {7, 3}, {7, 7}, {3, 7}}});
}

TEST(PointInRingTest, InsideOutsideBoundary) {
  std::vector<Point> ring = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  EXPECT_EQ(LocatePointInRing(Point{5, 5}, ring), RingLocation::kInside);
  EXPECT_EQ(LocatePointInRing(Point{15, 5}, ring), RingLocation::kOutside);
  EXPECT_EQ(LocatePointInRing(Point{10, 5}, ring), RingLocation::kBoundary);
  EXPECT_EQ(LocatePointInRing(Point{0, 0}, ring), RingLocation::kBoundary);
  EXPECT_EQ(LocatePointInRing(Point{5, 0}, ring), RingLocation::kBoundary);
}

TEST(PointInRingTest, ClosedAndUnclosedRingsAgree) {
  std::vector<Point> open = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  std::vector<Point> closed = {{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}};
  for (double x : {-1.0, 1.0, 2.0, 3.9, 4.0, 5.0}) {
    Point q{x, 2.0};
    EXPECT_EQ(LocatePointInRing(q, open), LocatePointInRing(q, closed)) << x;
  }
}

TEST(PointInRingTest, ConcavePolygon) {
  // A "U" shape.
  std::vector<Point> ring = {{0, 0}, {9, 0}, {9, 9}, {6, 9},
                             {6, 3}, {3, 3}, {3, 9}, {0, 9}};
  EXPECT_EQ(LocatePointInRing(Point{1.5, 5}, ring), RingLocation::kInside);
  EXPECT_EQ(LocatePointInRing(Point{4.5, 5}, ring), RingLocation::kOutside);
  EXPECT_EQ(LocatePointInRing(Point{7.5, 5}, ring), RingLocation::kInside);
  EXPECT_EQ(LocatePointInRing(Point{4.5, 1.5}, ring), RingLocation::kInside);
}

TEST(PointInPolygonTest, RespectsHoles) {
  Geometry poly = SquareWithHole();
  EXPECT_TRUE(PointInPolygon(Point{1, 1}, poly));
  EXPECT_FALSE(PointInPolygon(Point{5, 5}, poly));   // in the hole
  EXPECT_TRUE(PointInPolygon(Point{3, 5}, poly));    // on hole boundary
  EXPECT_FALSE(PointInPolygon(Point{11, 5}, poly));
}

TEST(PointInPolygonTest, MultiPolygon) {
  Geometry mp = Geometry::MakeMultiPolygon(
      {{{{0, 0}, {2, 0}, {2, 2}, {0, 2}}}, {{{5, 5}, {7, 5}, {7, 7}, {5, 7}}}});
  EXPECT_TRUE(PointInPolygon(Point{1, 1}, mp));
  EXPECT_TRUE(PointInPolygon(Point{6, 6}, mp));
  EXPECT_FALSE(PointInPolygon(Point{3.5, 3.5}, mp));
}

TEST(SegmentDistanceTest, Basics) {
  Point a{0, 0}, b{10, 0};
  EXPECT_DOUBLE_EQ(DistancePointSegment(Point{5, 3}, a, b), 3.0);
  EXPECT_DOUBLE_EQ(DistancePointSegment(Point{-3, 4}, a, b), 5.0);  // clamp a
  EXPECT_DOUBLE_EQ(DistancePointSegment(Point{13, 4}, a, b), 5.0);  // clamp b
  EXPECT_DOUBLE_EQ(DistancePointSegment(Point{5, 0}, a, b), 0.0);
}

TEST(SegmentDistanceTest, DegenerateSegment) {
  Point a{2, 2};
  EXPECT_DOUBLE_EQ(DistancePointSegment(Point{5, 6}, a, a), 5.0);
}

TEST(DistanceLineStringTest, MinOverSegments) {
  Geometry line = Geometry::MakeLineString({{0, 0}, {10, 0}, {10, 10}});
  EXPECT_DOUBLE_EQ(DistancePointLineString(Point{5, 2}, line), 2.0);
  EXPECT_DOUBLE_EQ(DistancePointLineString(Point{12, 5}, line), 2.0);
  EXPECT_DOUBLE_EQ(DistancePointLineString(Point{10, 10}, line), 0.0);
}

TEST(DistancePolygonTest, ZeroInsidePositiveOutside) {
  Geometry poly = UnitSquare();
  EXPECT_EQ(DistancePointPolygon(Point{5, 5}, poly), 0.0);
  EXPECT_DOUBLE_EQ(DistancePointPolygon(Point{13, 14}, poly), 5.0);
}

TEST(SegmentsIntersectTest, Cases) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {10, 10}, {0, 10}, {10, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 1}, {2, 2}, {3, 3}));
  // Collinear overlapping.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {5, 0}, {3, 0}, {8, 0}));
  // Touching at an endpoint.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {5, 0}, {5, 0}, {5, 5}));
  // Parallel, disjoint.
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {5, 0}, {0, 1}, {5, 1}));
}

TEST(WithinTest, PointInPolygon) {
  Geometry poly = UnitSquare();
  EXPECT_TRUE(Within(Geometry::MakePoint(5, 5), poly));
  EXPECT_FALSE(Within(Geometry::MakePoint(15, 5), poly));
  // Boundary counts as within in this kernel (documented choice).
  EXPECT_TRUE(Within(Geometry::MakePoint(10, 5), poly));
}

TEST(WithinTest, PolygonNotWithinPoint) {
  EXPECT_FALSE(Within(UnitSquare(), Geometry::MakePoint(5, 5)));
}

TEST(WithinTest, LineStringInPolygon) {
  Geometry poly = UnitSquare();
  EXPECT_TRUE(Within(Geometry::MakeLineString({{1, 1}, {9, 9}}), poly));
  EXPECT_FALSE(Within(Geometry::MakeLineString({{1, 1}, {15, 15}}), poly));
  // Line crossing the hole is not within.
  EXPECT_FALSE(Within(Geometry::MakeLineString({{1, 5}, {9, 5}}),
                      SquareWithHole()));
}

TEST(WithinTest, EnvelopePrefilterCorrect) {
  // A point whose envelope is inside the polygon's envelope but outside
  // the polygon itself.
  Geometry tri = Geometry::MakePolygon({{{0, 0}, {10, 0}, {0, 10}}});
  EXPECT_FALSE(Within(Geometry::MakePoint(9, 9), tri));
  EXPECT_TRUE(Within(Geometry::MakePoint(2, 2), tri));
}

TEST(DistanceTest, PointToPoint) {
  EXPECT_DOUBLE_EQ(
      Distance(Geometry::MakePoint(0, 0), Geometry::MakePoint(3, 4)), 5.0);
}

TEST(DistanceTest, SymmetricAcrossTypes) {
  Geometry p = Geometry::MakePoint(15, 5);
  Geometry poly = UnitSquare();
  Geometry line = Geometry::MakeLineString({{0, 20}, {10, 20}});
  EXPECT_DOUBLE_EQ(Distance(p, poly), Distance(poly, p));
  EXPECT_DOUBLE_EQ(Distance(p, line), Distance(line, p));
  EXPECT_DOUBLE_EQ(Distance(p, poly), 5.0);
}

TEST(DistanceTest, LineToPolygon) {
  Geometry poly = UnitSquare();
  Geometry far_line = Geometry::MakeLineString({{20, 0}, {20, 10}});
  EXPECT_DOUBLE_EQ(Distance(far_line, poly), 10.0);
  Geometry inside_line = Geometry::MakeLineString({{4, 4}, {6, 6}});
  EXPECT_DOUBLE_EQ(Distance(inside_line, poly), 0.0);
}

TEST(WithinDistanceTest, ThresholdBehaviour) {
  Geometry p = Geometry::MakePoint(15, 5);
  Geometry poly = UnitSquare();
  EXPECT_TRUE(WithinDistance(p, poly, 5.0));
  EXPECT_TRUE(WithinDistance(p, poly, 5.5));
  EXPECT_FALSE(WithinDistance(p, poly, 4.9));
}

TEST(IntersectsTest, PointCases) {
  Geometry poly = UnitSquare();
  EXPECT_TRUE(Intersects(Geometry::MakePoint(5, 5), poly));
  EXPECT_FALSE(Intersects(Geometry::MakePoint(15, 5), poly));
  Geometry line = Geometry::MakeLineString({{0, 0}, {10, 0}});
  EXPECT_TRUE(Intersects(Geometry::MakePoint(5, 0), line));
  EXPECT_FALSE(Intersects(Geometry::MakePoint(5, 1), line));
}

TEST(IntersectsTest, PolygonPolygon) {
  Geometry a = UnitSquare();
  Geometry b = Geometry::MakePolygon({{{5, 5}, {15, 5}, {15, 15}, {5, 15}}});
  Geometry c = Geometry::MakePolygon({{{20, 20}, {30, 20}, {30, 30}, {20, 30}}});
  Geometry inner = Geometry::MakePolygon({{{2, 2}, {3, 2}, {3, 3}, {2, 3}}});
  EXPECT_TRUE(Intersects(a, b));
  EXPECT_FALSE(Intersects(a, c));
  EXPECT_TRUE(Intersects(a, inner));  // containment
  EXPECT_TRUE(Intersects(inner, a));
}

// Property: PointInPolygon agrees with a distance-to-boundary oracle on a
// random star polygon (points strictly inside have crossing parity 1).
class PipProperty : public ::testing::TestWithParam<int> {};

TEST_P(PipProperty, AgreesWithRadialOracle) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977);
  // Star-shaped polygon around the origin: a point at radius r and angle
  // theta is inside iff r < r(theta).
  const int n = 3 + static_cast<int>(rng.UniformInt(30));
  std::vector<double> radii(n);
  std::vector<Point> ring(n);
  for (int i = 0; i < n; ++i) {
    radii[i] = rng.Uniform(5.0, 20.0);
    double theta = 6.283185307179586 * i / n;
    ring[i] = Point{radii[i] * std::cos(theta), radii[i] * std::sin(theta)};
  }
  Geometry poly = Geometry::MakePolygon({ring});
  for (int trial = 0; trial < 200; ++trial) {
    // Sample along a random spoke direction, at radii clearly inside or
    // clearly outside the local boundary (avoid near-boundary ambiguity).
    int i = static_cast<int>(rng.UniformInt(n));
    double theta = 6.283185307179586 * i / n;
    double inner_r = radii[i] * 0.2;
    double outer_r = 25.0;
    Point inside{inner_r * std::cos(theta), inner_r * std::sin(theta)};
    Point outside{outer_r * std::cos(theta), outer_r * std::sin(theta)};
    EXPECT_TRUE(PointInPolygon(inside, poly));
    EXPECT_FALSE(PointInPolygon(outside, poly));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipProperty, ::testing::Range(1, 11));

// Property: WithinDistance(point, line, d) agrees with exact distance.
class DistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(DistanceProperty, WithinDistanceMatchesDistance) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Point> path;
    int n = 2 + static_cast<int>(rng.UniformInt(6));
    for (int i = 0; i < n; ++i) {
      path.push_back(Point{rng.Uniform(-50, 50), rng.Uniform(-50, 50)});
    }
    Geometry line = Geometry::MakeLineString(std::move(path));
    Geometry p = Geometry::MakePoint(rng.Uniform(-60, 60),
                                     rng.Uniform(-60, 60));
    double d = Distance(p, line);
    EXPECT_TRUE(WithinDistance(p, line, d + 1e-9));
    if (d > 1e-9) {
      EXPECT_FALSE(WithinDistance(p, line, d * 0.99 - 1e-9));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace cloudjoin::geom
