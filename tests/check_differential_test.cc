#include "check/differential.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "check/shrink.h"
#include "check/workload.h"
#include "geom/wkt.h"
#include "geosim/wkt_reader.h"

namespace cloudjoin::check {
namespace {

using geom::Geometry;
using geom::GeometryType;

bool TablesEqual(const CaseTable& a, const CaseTable& b) {
  if (a.lines != b.lines) return false;
  if (a.records.size() != b.records.size()) return false;
  for (size_t i = 0; i < a.records.size(); ++i) {
    if (a.records[i].id != b.records[i].id) return false;
    if (!(a.records[i].geometry == b.records[i].geometry)) return false;
  }
  return true;
}

TEST(WorkloadGeneratorTest, DeterministicPerSeed) {
  for (uint64_t seed : {1ull, 7ull, 123456789ull}) {
    DifferentialCase a = GenerateCase(seed);
    DifferentialCase b = GenerateCase(seed);
    EXPECT_EQ(a.predicate.op, b.predicate.op);
    EXPECT_EQ(a.predicate.distance, b.predicate.distance);
    EXPECT_TRUE(TablesEqual(a.left, b.left)) << seed;
    EXPECT_TRUE(TablesEqual(a.right, b.right)) << seed;
  }
}

TEST(WorkloadGeneratorTest, IdsAreLineNumbers) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    DifferentialCase c = GenerateCase(seed);
    for (const CaseTable* table : {&c.left, &c.right}) {
      ASSERT_EQ(table->records.size(), table->lines.size());
      for (size_t i = 0; i < table->records.size(); ++i) {
        EXPECT_EQ(table->records[i].id, static_cast<int64_t>(i));
        EXPECT_EQ(table->lines[i].rfind(std::to_string(i) + "\t", 0), 0u)
            << table->lines[i];
      }
    }
  }
}

TEST(WorkloadGeneratorTest, CoversEdgeCaseShapes) {
  // Over a modest seed range the generator must actually produce each edge
  // shape the harness exists to cross-check.
  bool empty_left = false;
  bool empty_right = false;
  bool zero_extent_right = false;
  bool empty_geometry = false;
  bool extreme_magnitude = false;
  bool duplicate_left = false;
  bool nearest_zero = false;
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    DifferentialCase c = GenerateCase(seed);
    empty_left = empty_left || c.left.records.empty();
    empty_right = empty_right || c.right.records.empty();
    if (c.predicate.op == join::SpatialOperator::kNearestD &&
        c.predicate.distance == 0.0) {
      nearest_zero = true;
    }
    for (const join::IdGeometry& r : c.right.records) {
      const geom::Envelope& env = r.geometry.envelope();
      if (!r.geometry.IsEmpty() &&
          (env.Width() == 0.0 || env.Height() == 0.0)) {
        zero_extent_right = true;
      }
    }
    for (const CaseTable* table : {&c.left, &c.right}) {
      for (const join::IdGeometry& r : table->records) {
        empty_geometry = empty_geometry || r.geometry.IsEmpty();
        for (const geom::Point& p : r.geometry.Coords()) {
          if (std::abs(p.x) > 1e6 || std::abs(p.x) < 1e-7) {
            extreme_magnitude = extreme_magnitude || p.x != 0.0;
          }
        }
      }
    }
    for (size_t i = 0; i < c.left.records.size() && !duplicate_left; ++i) {
      for (size_t j = i + 1; j < c.left.records.size(); ++j) {
        if (c.left.records[i].geometry == c.left.records[j].geometry) {
          duplicate_left = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(empty_left);
  EXPECT_TRUE(empty_right);
  EXPECT_TRUE(zero_extent_right);
  EXPECT_TRUE(empty_geometry);
  EXPECT_TRUE(extreme_magnitude);
  EXPECT_TRUE(duplicate_left);
  EXPECT_TRUE(nearest_zero);
}

TEST(WorkloadGeneratorTest, WktLinesRoundTripBothStacks) {
  // The %.17g rendering must round-trip exactly through the fast (geom)
  // reader; the GEOS-role reader must accept every non-EMPTY form (EMPTY
  // rows are dropped by that stack by design — empty geometries match
  // nothing, so result sets still agree).
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    DifferentialCase c = GenerateCase(seed);
    for (const CaseTable* table : {&c.left, &c.right}) {
      for (size_t i = 0; i < table->records.size(); ++i) {
        const std::string& line = table->lines[i];
        const std::string wkt = line.substr(line.find('\t') + 1);
        auto parsed = geom::ReadWkt(wkt);
        ASSERT_TRUE(parsed.ok()) << wkt << ": " << parsed.status();
        EXPECT_TRUE(parsed.value() == table->records[i].geometry) << wkt;
        geosim::GeometryFactory factory;
        geosim::WKTReader reader(&factory);
        auto geosim_parsed = reader.read(wkt);
        if (table->records[i].geometry.IsEmpty()) {
          EXPECT_FALSE(geosim_parsed.ok()) << wkt;
        } else {
          EXPECT_TRUE(geosim_parsed.ok()) << wkt << ": "
                                          << geosim_parsed.status();
        }
      }
    }
  }
}

TEST(WorkloadTest, CanonicalizeRenumbersAndRegeneratesLines) {
  DifferentialCase c = GenerateCase(11);
  ASSERT_GE(c.left.records.size(), 2u);
  c.left.records.erase(c.left.records.begin());
  Canonicalize(&c);
  ASSERT_EQ(c.left.records.size(), c.left.lines.size());
  for (size_t i = 0; i < c.left.records.size(); ++i) {
    EXPECT_EQ(c.left.records[i].id, static_cast<int64_t>(i));
    EXPECT_EQ(c.left.lines[i],
              std::to_string(i) + "\t" +
                  FormatWkt(c.left.records[i].geometry));
  }
}

TEST(CompareResultsTest, DetectsMissingAndExtraPairs) {
  EngineResult oracle;
  oracle.engine = "oracle/nested_loop";
  oracle.ran = true;
  oracle.pairs = {{0, 0}, {1, 2}, {3, 1}};
  EngineResult agree = oracle;
  agree.engine = "mem/broadcast";
  EngineResult diverge;
  diverge.engine = "spark/wkb";
  diverge.ran = true;
  diverge.pairs = {{0, 0}, {2, 2}};
  EngineResult skipped;
  skipped.engine = "service/sql_cold";

  CaseOutcome outcome = CompareResults({oracle, agree, diverge, skipped});
  EXPECT_TRUE(outcome.mismatch);
  EXPECT_NE(outcome.summary.find("spark/wkb"), std::string::npos);
  EXPECT_NE(outcome.summary.find("(1,2)"), std::string::npos);  // missing
  EXPECT_NE(outcome.summary.find("(2,2)"), std::string::npos);  // extra
  EXPECT_EQ(outcome.summary.find("mem/broadcast"), std::string::npos);
}

TEST(CompareResultsTest, EngineErrorIsAMismatch) {
  EngineResult oracle;
  oracle.engine = "oracle/nested_loop";
  oracle.ran = true;
  EngineResult failed;
  failed.engine = "ispmc/sql";
  failed.ran = true;
  failed.status = Status::Internal("boom");

  CaseOutcome outcome = CompareResults({oracle, failed});
  EXPECT_TRUE(outcome.mismatch);
  EXPECT_NE(outcome.summary.find("ispmc/sql"), std::string::npos);
  EXPECT_NE(outcome.summary.find("boom"), std::string::npos);
}

TEST(CompareResultsTest, AgreementIsNotAMismatch) {
  EngineResult oracle;
  oracle.engine = "oracle/nested_loop";
  oracle.ran = true;
  oracle.pairs = {{1, 1}};
  EngineResult agree = oracle;
  agree.engine = "mem/broadcast";
  CaseOutcome outcome = CompareResults({oracle, agree});
  EXPECT_FALSE(outcome.mismatch);
  EXPECT_TRUE(outcome.summary.empty());
}

TEST(ShrinkTest, ReducesToMinimalCoreAndRenumbers) {
  // The "bug" fires whenever a marked left geometry meets a marked right
  // geometry — the shrinker must strip everything else and renumber.
  const Geometry needle_left = Geometry::MakePoint(101.0, 202.0);
  const Geometry needle_right =
      Geometry::MakePolygon({{{100.0, 200.0},
                              {104.0, 200.0},
                              {104.0, 204.0},
                              {100.0, 204.0},
                              {100.0, 200.0}}});
  DifferentialCase c = GenerateCase(5);
  c.left.records.push_back({0, needle_left});
  c.right.records.insert(c.right.records.begin(), {0, needle_right});
  Canonicalize(&c);

  int probes = 0;
  auto still_fails = [&](const DifferentialCase& candidate) {
    ++probes;
    bool has_left = false;
    bool has_right = false;
    for (const auto& r : candidate.left.records) {
      has_left = has_left || r.geometry == needle_left;
    }
    for (const auto& r : candidate.right.records) {
      has_right = has_right || r.geometry == needle_right;
    }
    return has_left && has_right;
  };
  ASSERT_TRUE(still_fails(c));

  DifferentialCase minimal = ShrinkCase(c, still_fails);
  ASSERT_EQ(minimal.left.records.size(), 1u);
  ASSERT_EQ(minimal.right.records.size(), 1u);
  EXPECT_TRUE(minimal.left.records[0].geometry == needle_left);
  EXPECT_TRUE(minimal.right.records[0].geometry == needle_right);
  EXPECT_EQ(minimal.left.records[0].id, 0);
  EXPECT_EQ(minimal.right.records[0].id, 0);
  EXPECT_EQ(minimal.left.lines[0],
            "0\t" + FormatWkt(needle_left));
  EXPECT_GT(probes, 0);
}

TEST(ShrinkTest, FormatReproEmitsPasteableTest) {
  DifferentialCase c;
  c.seed = 77;
  c.predicate = join::SpatialPredicate::NearestD(1.5);
  c.left.records.push_back({0, Geometry::MakePoint(0.25, -0.5)});
  c.right.records.push_back(
      {0, Geometry::MakePolygon({{{0, 0}, {1, 0}, {1, 1}, {0, 0}}})});
  c.right.records.push_back({1, Geometry(GeometryType::kPolygon)});
  Canonicalize(&c);

  const std::string repro = FormatRepro(c, "spark/wkb: 0 pairs vs oracle 1");
  EXPECT_NE(repro.find("TEST(DifferentialRegressionTest, Seed77)"),
            std::string::npos);
  EXPECT_NE(repro.find("spark/wkb"), std::string::npos);
  EXPECT_NE(repro.find("MakePoint(0.25, -0.5)"), std::string::npos);
  EXPECT_NE(repro.find("MakePolygon"), std::string::npos);
  EXPECT_NE(repro.find("geom::Geometry(geom::GeometryType::kPolygon)"),
            std::string::npos);
  EXPECT_NE(repro.find("NearestD(1.5)"), std::string::npos);
  EXPECT_NE(repro.find("NestedLoopSpatialJoin"), std::string::npos);
  EXPECT_NE(repro.find("PartitionedSpatialJoin"), std::string::npos);
}

TEST(DifferentialRunnerTest, InMemoryEnginesAgreeAcrossSeeds) {
  // Fast arm of the sweep: memory-only engines over a wider seed range.
  DifferentialRunner::Options options;
  options.run_dfs_engines = false;
  options.run_service = false;
  DifferentialRunner runner(options);
  std::vector<Failure> failures = runner.RunSeeds(1, 60, /*shrink=*/false);
  for (const Failure& f : failures) {
    ADD_FAILURE() << "seed " << f.seed << ":\n" << f.outcome.summary;
  }
  EXPECT_EQ(runner.counters().Get("check.cases"), 60);
  EXPECT_EQ(runner.counters().Get("check.mismatched_cases"), 0);
  EXPECT_GT(runner.counters().Get("check.oracle_pairs"), 0);
}

TEST(DifferentialRunnerTest, AllEnginesAgreeOnSmokeSeeds) {
  DifferentialRunner runner;
  std::vector<Failure> failures = runner.RunSeeds(1, 12, /*shrink=*/true);
  for (const Failure& f : failures) {
    ADD_FAILURE() << "seed " << f.seed << ":\n"
                  << f.outcome.summary << "\n"
                  << f.repro;
  }
  const Counters& counters = runner.counters();
  EXPECT_EQ(counters.Get("check.cases"), 12);
  EXPECT_EQ(counters.Get("check.mismatched_cases"), 0);
  EXPECT_GT(counters.Get("check.engines_run"), 0);

  sim::RunReport report = runner.BuildReport();
  EXPECT_EQ(report.system, "check-differential");
  EXPECT_EQ(report.counters.Get("check.cases"), 12);
}

}  // namespace
}  // namespace cloudjoin::check
