#include <gtest/gtest.h>

#include "impala/expr.h"

namespace cloudjoin::impala {
namespace {

std::unique_ptr<Expr> Lit(int64_t v) {
  return std::make_unique<LiteralExpr>(Value{v}, ColumnType::kInt64);
}
std::unique_ptr<Expr> Lit(double v) {
  return std::make_unique<LiteralExpr>(Value{v}, ColumnType::kDouble);
}
std::unique_ptr<Expr> Lit(const std::string& v) {
  return std::make_unique<LiteralExpr>(Value{v}, ColumnType::kString);
}
std::unique_ptr<Expr> Null() {
  return std::make_unique<LiteralExpr>(Value{}, ColumnType::kInt64);
}

Value Bin(const std::string& op, std::unique_ptr<Expr> l,
          std::unique_ptr<Expr> r) {
  BinaryExpr expr(op, std::move(l), std::move(r));
  return expr.Evaluate(nullptr, nullptr);
}

TEST(ExprTest, IntegerArithmeticStaysIntegral) {
  EXPECT_EQ(std::get<int64_t>(Bin("+", Lit(int64_t{2}), Lit(int64_t{3}))), 5);
  EXPECT_EQ(std::get<int64_t>(Bin("-", Lit(int64_t{2}), Lit(int64_t{3}))), -1);
  EXPECT_EQ(std::get<int64_t>(Bin("*", Lit(int64_t{4}), Lit(int64_t{3}))), 12);
}

TEST(ExprTest, MixedArithmeticPromotesToDouble) {
  EXPECT_DOUBLE_EQ(std::get<double>(Bin("+", Lit(int64_t{2}), Lit(0.5))),
                   2.5);
  EXPECT_DOUBLE_EQ(std::get<double>(Bin("*", Lit(1.5), Lit(int64_t{4}))),
                   6.0);
}

TEST(ExprTest, DivisionAlwaysDouble) {
  EXPECT_DOUBLE_EQ(std::get<double>(Bin("/", Lit(int64_t{7}), Lit(int64_t{2}))),
                   3.5);
}

TEST(ExprTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(IsNull(Bin("/", Lit(int64_t{7}), Lit(int64_t{0}))));
}

TEST(ExprTest, NumericComparisons) {
  EXPECT_TRUE(std::get<bool>(Bin("<", Lit(int64_t{1}), Lit(2.0))));
  EXPECT_FALSE(std::get<bool>(Bin(">", Lit(int64_t{1}), Lit(2.0))));
  EXPECT_TRUE(std::get<bool>(Bin("=", Lit(3.0), Lit(int64_t{3}))));
  EXPECT_TRUE(std::get<bool>(Bin("<=", Lit(int64_t{3}), Lit(int64_t{3}))));
  EXPECT_TRUE(std::get<bool>(Bin("<>", Lit(int64_t{3}), Lit(int64_t{4}))));
}

TEST(ExprTest, StringComparisons) {
  EXPECT_TRUE(std::get<bool>(Bin("=", Lit("abc"), Lit("abc"))));
  EXPECT_TRUE(std::get<bool>(Bin("<", Lit("abc"), Lit("abd"))));
  EXPECT_FALSE(std::get<bool>(Bin(">=", Lit("abc"), Lit("abd"))));
}

TEST(ExprTest, NullPropagatesThroughComparison) {
  EXPECT_TRUE(IsNull(Bin("=", Null(), Lit(int64_t{1}))));
  EXPECT_TRUE(IsNull(Bin("+", Lit(int64_t{1}), Null())));
}

TEST(ExprTest, AndOrShortCircuit) {
  auto t = std::make_unique<LiteralExpr>(Value{true}, ColumnType::kBool);
  auto f = std::make_unique<LiteralExpr>(Value{false}, ColumnType::kBool);
  EXPECT_FALSE(std::get<bool>(Bin("AND", std::move(f), Null())));
  auto t2 = std::make_unique<LiteralExpr>(Value{true}, ColumnType::kBool);
  EXPECT_TRUE(std::get<bool>(Bin("OR", std::move(t), std::move(t2))));
}

TEST(ExprTest, SlotRefReadsCorrectSide) {
  Row left = {Value{int64_t{1}}, Value{std::string("L")}};
  Row right = {Value{int64_t{2}}, Value{std::string("R")}};
  SlotRef left_ref(0, 1, ColumnType::kString);
  SlotRef right_ref(1, 1, ColumnType::kString);
  EXPECT_EQ(std::get<std::string>(left_ref.Evaluate(&left, &right)), "L");
  EXPECT_EQ(std::get<std::string>(right_ref.Evaluate(&left, &right)), "R");
  // Missing side evaluates to NULL, not a crash.
  EXPECT_TRUE(IsNull(right_ref.Evaluate(&left, nullptr)));
}

TEST(ExprTest, SlotRefOutOfRangeIsNull) {
  Row left = {Value{int64_t{1}}};
  SlotRef ref(0, 5, ColumnType::kInt64);
  EXPECT_TRUE(IsNull(ref.Evaluate(&left, nullptr)));
}

TEST(ExprTest, EvaluatesTrueRequiresTrueBool) {
  LiteralExpr t(Value{true}, ColumnType::kBool);
  LiteralExpr f(Value{false}, ColumnType::kBool);
  LiteralExpr n(Value{}, ColumnType::kBool);
  LiteralExpr i(Value{int64_t{1}}, ColumnType::kInt64);
  EXPECT_TRUE(t.EvaluatesTrue(nullptr, nullptr));
  EXPECT_FALSE(f.EvaluatesTrue(nullptr, nullptr));
  EXPECT_FALSE(n.EvaluatesTrue(nullptr, nullptr));
  EXPECT_FALSE(i.EvaluatesTrue(nullptr, nullptr));  // non-bool is not true
}

class UdfTest : public ::testing::Test {
 protected:
  UdfTest() { RegisterSpatialUdfs(); }

  Value Call(const std::string& name, std::vector<Value> args) {
    auto udf = UdfRegistry::Global().Lookup(name,
                                            static_cast<int>(args.size()));
    CLOUDJOIN_CHECK(udf.ok()) << udf.status();
    return (*udf)->fn(args);
  }
};

TEST_F(UdfTest, RegistryLookup) {
  EXPECT_TRUE(UdfRegistry::Global().Lookup("ST_WITHIN", 2).ok());
  EXPECT_FALSE(UdfRegistry::Global().Lookup("ST_WITHIN", 3).ok());  // arity
  EXPECT_FALSE(UdfRegistry::Global().Lookup("ST_BOGUS", 2).ok());
  EXPECT_GE(UdfRegistry::Global().ListNames().size(), 7u);
}

TEST_F(UdfTest, StWithin) {
  std::string square = "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))";
  EXPECT_TRUE(std::get<bool>(
      Call("ST_WITHIN", {Value{std::string("POINT (5 5)")}, Value{square}})));
  EXPECT_FALSE(std::get<bool>(
      Call("ST_WITHIN", {Value{std::string("POINT (15 5)")}, Value{square}})));
}

TEST_F(UdfTest, StWithinInvalidWktIsNull) {
  EXPECT_TRUE(IsNull(Call("ST_WITHIN", {Value{std::string("JUNK")},
                                        Value{std::string("POINT (1 1)")}})));
  EXPECT_TRUE(IsNull(Call("ST_WITHIN", {Value{int64_t{5}},
                                        Value{std::string("POINT (1 1)")}})));
}

TEST_F(UdfTest, StNearestD) {
  std::string line = "LINESTRING (0 0, 10 0)";
  EXPECT_TRUE(std::get<bool>(Call(
      "ST_NEARESTD",
      {Value{std::string("POINT (5 3)")}, Value{line}, Value{3.0}})));
  EXPECT_FALSE(std::get<bool>(Call(
      "ST_NEARESTD",
      {Value{std::string("POINT (5 3)")}, Value{line}, Value{2.5}})));
  // Integer distance argument also accepted.
  EXPECT_TRUE(std::get<bool>(Call(
      "ST_NEARESTD",
      {Value{std::string("POINT (5 3)")}, Value{line}, Value{int64_t{4}}})));
}

TEST_F(UdfTest, StDistanceAndCoords) {
  EXPECT_DOUBLE_EQ(
      std::get<double>(Call("ST_DISTANCE",
                            {Value{std::string("POINT (0 0)")},
                             Value{std::string("POINT (3 4)")}})),
      5.0);
  EXPECT_DOUBLE_EQ(std::get<double>(
                       Call("ST_X", {Value{std::string("POINT (7 8)")}})),
                   7.0);
  EXPECT_DOUBLE_EQ(std::get<double>(
                       Call("ST_Y", {Value{std::string("POINT (7 8)")}})),
                   8.0);
  // ST_X of a polygon is NULL.
  EXPECT_TRUE(IsNull(Call(
      "ST_X", {Value{std::string("POLYGON ((0 0, 1 0, 1 1, 0 0))")}})));
}

TEST_F(UdfTest, StNumPoints) {
  EXPECT_EQ(std::get<int64_t>(Call(
                "ST_NUMPOINTS",
                {Value{std::string("LINESTRING (0 0, 1 1, 2 2)")}})),
            3);
}

TEST_F(UdfTest, StIntersects) {
  EXPECT_TRUE(std::get<bool>(
      Call("ST_INTERSECTS", {Value{std::string("POINT (5 5)")},
                             Value{std::string(
                                 "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")}})));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(ValueToString(Value{}), "NULL");
  EXPECT_EQ(ValueToString(Value{int64_t{42}}), "42");
  EXPECT_EQ(ValueToString(Value{std::string("x")}), "x");
  EXPECT_EQ(ValueToString(Value{true}), "true");
  EXPECT_EQ(ValueToString(Value{2.5}), "2.5");
}

TEST(RowBatchTest, CapacityAndAccess) {
  RowBatch batch;
  EXPECT_TRUE(batch.IsEmpty());
  for (int i = 0; i < RowBatch::kCapacity; ++i) {
    batch.Add(Row{Value{int64_t{i}}});
  }
  EXPECT_TRUE(batch.IsFull());
  EXPECT_EQ(batch.NumRows(), RowBatch::kCapacity);
  EXPECT_EQ(std::get<int64_t>(batch.row(5)[0]), 5);
  batch.Clear();
  EXPECT_TRUE(batch.IsEmpty());
}

}  // namespace
}  // namespace cloudjoin::impala
