#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "dfs/sim_file_system.h"

namespace cloudjoin::dfs {
namespace {

TEST(SimFileSystemTest, WriteAndRead) {
  SimFileSystem fs(4, 1024);
  ASSERT_TRUE(fs.WriteTextFile("/a.txt", {"hello", "world"}).ok());
  auto file = fs.GetFile("/a.txt");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->data(), "hello\nworld\n");
  EXPECT_TRUE(fs.Exists("/a.txt"));
  EXPECT_FALSE(fs.Exists("/b.txt"));
}

TEST(SimFileSystemTest, MissingFileIsNotFound) {
  SimFileSystem fs(2);
  auto file = fs.GetFile("/nope");
  EXPECT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kNotFound);
}

TEST(SimFileSystemTest, DeleteAndList) {
  SimFileSystem fs(2);
  ASSERT_TRUE(fs.WriteFile("/x", "1").ok());
  ASSERT_TRUE(fs.WriteFile("/y", "2").ok());
  EXPECT_EQ(fs.ListFiles().size(), 2u);
  EXPECT_TRUE(fs.DeleteFile("/x").ok());
  EXPECT_FALSE(fs.DeleteFile("/x").ok());
  EXPECT_EQ(fs.ListFiles().size(), 1u);
  EXPECT_EQ(fs.TotalBytes(), 1);
}

TEST(SimFileSystemTest, BlocksCoverFileWithReplicas) {
  SimFileSystem fs(5, /*block_size=*/100, /*replication=*/3);
  std::string data(950, 'x');
  ASSERT_TRUE(fs.WriteFile("/big", data).ok());
  auto file = fs.GetFile("/big");
  ASSERT_TRUE(file.ok());
  const auto& blocks = (*file)->blocks();
  ASSERT_EQ(blocks.size(), 10u);
  int64_t covered = 0;
  for (size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].offset, static_cast<int64_t>(i) * 100);
    covered += blocks[i].length;
    EXPECT_EQ(blocks[i].replica_nodes.size(), 3u);
    std::set<int> distinct(blocks[i].replica_nodes.begin(),
                           blocks[i].replica_nodes.end());
    EXPECT_EQ(distinct.size(), 3u) << "replicas must be distinct nodes";
    for (int node : blocks[i].replica_nodes) {
      EXPECT_GE(node, 0);
      EXPECT_LT(node, 5);
    }
  }
  EXPECT_EQ(covered, 950);
  EXPECT_EQ(blocks.back().length, 50);
}

TEST(SimFileSystemTest, ReplicationClampedToNodes) {
  SimFileSystem fs(2, 100, /*replication=*/3);
  ASSERT_TRUE(fs.WriteFile("/f", "abc").ok());
  auto file = fs.GetFile("/f");
  EXPECT_EQ((*file)->blocks()[0].replica_nodes.size(), 2u);
}

TEST(SimFileSystemTest, PrimaryReplicaRoundRobins) {
  SimFileSystem fs(3, 10);
  ASSERT_TRUE(fs.WriteFile("/f", std::string(35, 'a')).ok());
  auto file = fs.GetFile("/f");
  const auto& blocks = (*file)->blocks();
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks[0].replica_nodes[0], 0);
  EXPECT_EQ(blocks[1].replica_nodes[0], 1);
  EXPECT_EQ(blocks[2].replica_nodes[0], 2);
  EXPECT_EQ(blocks[3].replica_nodes[0], 0);
}

TEST(LineRecordReaderTest, ReadsWholeFile) {
  std::string data = "a\nbb\nccc\n";
  LineRecordReader reader(data, 0, static_cast<int64_t>(data.size()));
  std::string_view line;
  ASSERT_TRUE(reader.Next(&line));
  EXPECT_EQ(line, "a");
  ASSERT_TRUE(reader.Next(&line));
  EXPECT_EQ(line, "bb");
  ASSERT_TRUE(reader.Next(&line));
  EXPECT_EQ(line, "ccc");
  EXPECT_FALSE(reader.Next(&line));
}

TEST(LineRecordReaderTest, NoTrailingNewline) {
  std::string data = "a\nb";
  LineRecordReader reader(data, 0, 3);
  std::string_view line;
  ASSERT_TRUE(reader.Next(&line));
  EXPECT_EQ(line, "a");
  ASSERT_TRUE(reader.Next(&line));
  EXPECT_EQ(line, "b");
  EXPECT_FALSE(reader.Next(&line));
}

TEST(LineRecordReaderTest, SplitOwnership) {
  // "aaaa\nbbbb\ncccc\n": a split starting mid-line skips it; a split
  // ending mid-line finishes it.
  std::string data = "aaaa\nbbbb\ncccc\n";
  {
    LineRecordReader first(data, 0, 7);  // ends inside "bbbb"
    std::string_view line;
    ASSERT_TRUE(first.Next(&line));
    EXPECT_EQ(line, "aaaa");
    ASSERT_TRUE(first.Next(&line));
    EXPECT_EQ(line, "bbbb");  // owns the straddling line
    EXPECT_FALSE(first.Next(&line));
  }
  {
    LineRecordReader second(data, 7, 8);  // starts inside "bbbb"
    std::string_view line;
    ASSERT_TRUE(second.Next(&line));
    EXPECT_EQ(line, "cccc");  // skipped the partial line
    EXPECT_FALSE(second.Next(&line));
  }
}

TEST(LineRecordReaderTest, ReportsLineNumberAndOffset) {
  std::string data = "aaaa\nbb\ncccc\n";
  LineRecordReader reader(data, 0, static_cast<int64_t>(data.size()));
  EXPECT_EQ(reader.line_number(), 0);  // before the first Next
  std::string_view line;
  ASSERT_TRUE(reader.Next(&line));
  EXPECT_EQ(reader.line_number(), 1);
  EXPECT_EQ(reader.record_offset(), 0);
  ASSERT_TRUE(reader.Next(&line));
  EXPECT_EQ(reader.line_number(), 2);
  EXPECT_EQ(reader.record_offset(), 5);
  ASSERT_TRUE(reader.Next(&line));
  EXPECT_EQ(reader.line_number(), 3);
  EXPECT_EQ(reader.record_offset(), 8);
  EXPECT_EQ(reader.bytes_read(), static_cast<int64_t>(data.size()));
}

TEST(LineRecordReaderTest, RecordOffsetIsAbsoluteInSplits) {
  // A split starting mid-line reports offsets in whole-file coordinates,
  // so a malformed-line report locates the bytes without knowing the
  // split layout.
  std::string data = "aaaa\nbbbb\ncccc\n";
  LineRecordReader reader(data, 7, 8);  // starts inside "bbbb"
  std::string_view line;
  ASSERT_TRUE(reader.Next(&line));
  EXPECT_EQ(line, "cccc");
  EXPECT_EQ(reader.line_number(), 1);  // first line of THIS split
  EXPECT_EQ(reader.record_offset(), 10);
}

// Property: any partition of the byte range into contiguous splits yields
// each line exactly once, in order.
class SplitProperty : public ::testing::TestWithParam<int> {};

TEST_P(SplitProperty, EveryLineExactlyOnce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 131);
  std::vector<std::string> lines;
  std::string data;
  int n = 50 + static_cast<int>(rng.UniformInt(200));
  for (int i = 0; i < n; ++i) {
    std::string line = "line" + std::to_string(i);
    int pad = static_cast<int>(rng.UniformInt(30));
    line.append(static_cast<size_t>(pad), 'x');
    lines.push_back(line);
    data += line;
    data.push_back('\n');
  }
  // Random contiguous split boundaries.
  int num_splits = 1 + static_cast<int>(rng.UniformInt(12));
  std::vector<int64_t> cuts = {0};
  for (int i = 0; i < num_splits - 1; ++i) {
    cuts.push_back(static_cast<int64_t>(rng.UniformInt(data.size())));
  }
  cuts.push_back(static_cast<int64_t>(data.size()));
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<std::string> seen;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    LineRecordReader reader(data, cuts[i], cuts[i + 1] - cuts[i]);
    std::string_view line;
    while (reader.Next(&line)) seen.emplace_back(line);
  }
  EXPECT_EQ(seen, lines);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitProperty, ::testing::Range(1, 13));

}  // namespace
}  // namespace cloudjoin::dfs
