#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>
#include <cstring>

#include "common/rng.h"
#include "data/convert.h"
#include "data/generators.h"
#include "dfs/sim_file_system.h"
#include "geom/wkb.h"
#include "geom/wkt.h"
#include "join/spatial_spark_system.h"

namespace cloudjoin::geom {
namespace {

Geometry MustWkt(const char* wkt) {
  auto g = ReadWkt(wkt);
  CLOUDJOIN_CHECK(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(WkbTest, PointRoundTripBitExact) {
  Geometry p = Geometry::MakePoint(-73.98123456789012, 40.7487654321);
  auto round = ReadWkb(WriteWkb(p));
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(*round == p);  // exact, no decimal loss
}

TEST(WkbTest, AllTypesRoundTrip) {
  const char* cases[] = {
      "POINT (1.5 -2.25)",
      "LINESTRING (0 0, 1 1, 2 0)",
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))",
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))",
      "MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))",
      "MULTIPOINT (1 2, 3 4)",
  };
  for (const char* wkt : cases) {
    Geometry g = MustWkt(wkt);
    auto round = ReadWkb(WriteWkb(g));
    ASSERT_TRUE(round.ok()) << wkt << ": " << round.status();
    EXPECT_TRUE(*round == g) << wkt;
  }
}

TEST(WkbTest, EmptyPointEncodesAsNan) {
  Geometry empty(GeometryType::kPoint);
  auto round = ReadWkb(WriteWkb(empty));
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->IsEmpty());
  EXPECT_EQ(round->type(), GeometryType::kPoint);
}

TEST(WkbTest, KnownEncoding) {
  // POINT (1 2), little-endian: 01 01000000 + two doubles.
  std::string wkb = WriteWkb(Geometry::MakePoint(1, 2));
  ASSERT_EQ(wkb.size(), 21u);
  EXPECT_EQ(static_cast<uint8_t>(wkb[0]), 1);
  EXPECT_EQ(static_cast<uint8_t>(wkb[1]), 1);
  EXPECT_EQ(ToHex(wkb.substr(0, 5)), "0101000000");
}

TEST(WkbTest, BigEndianAccepted) {
  // Hand-built big-endian POINT (1 2).
  std::string wkb;
  wkb.push_back('\x00');                      // big-endian
  wkb.append({'\x00', '\x00', '\x00', '\x01'});  // type 1
  auto put_be_double = [&wkb](double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    for (int i = 7; i >= 0; --i) {
      wkb.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
    }
  };
  put_be_double(1.0);
  put_be_double(2.0);
  auto g = ReadWkb(wkb);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_TRUE(*g == Geometry::MakePoint(1, 2));
}

TEST(WkbTest, Errors) {
  EXPECT_FALSE(ReadWkb("").ok());
  EXPECT_FALSE(ReadWkb("\x05").ok());                   // bad order marker
  EXPECT_FALSE(ReadWkb(std::string("\x01\x09\x00\x00\x00", 5)).ok());  // type 9
  std::string truncated = WriteWkb(MustWkt("LINESTRING (0 0, 1 1)"));
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(ReadWkb(truncated).ok());
  // Absurd coordinate count must not allocate.
  std::string bomb("\x01\x02\x00\x00\x00\xFF\xFF\xFF\xFF", 9);
  EXPECT_FALSE(ReadWkb(bomb).ok());
  std::string trailing = WriteWkb(Geometry::MakePoint(1, 2)) + "x";
  EXPECT_FALSE(ReadWkb(trailing).ok());
}

TEST(HexTest, RoundTrip) {
  std::string bytes("\x00\x01\xAB\xFF\x7f", 5);
  auto back = FromHex(ToHex(bytes));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, bytes);
  EXPECT_EQ(ToHex(bytes), "0001ABFF7F");
}

TEST(HexTest, AcceptsLowerCase) {
  auto bytes = FromHex("abff");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(ToHex(*bytes), "ABFF");
}

TEST(HexTest, Errors) {
  EXPECT_FALSE(FromHex("ABC").ok());   // odd length
  EXPECT_FALSE(FromHex("ZZ").ok());    // bad digit
}

class WkbRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(WkbRoundTripProperty, RandomPolygonsBitExact) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 881);
  for (int trial = 0; trial < 30; ++trial) {
    int n = 3 + static_cast<int>(rng.UniformInt(40));
    std::vector<Point> ring;
    for (int i = 0; i < n; ++i) {
      double theta = 6.283185307179586 * i / n;
      double r = rng.Uniform(1, 1000);
      ring.push_back(Point{r * std::cos(theta), r * std::sin(theta)});
    }
    Geometry g = Geometry::MakePolygon({ring});
    auto hex_round = ReadWkbHex(WriteWkbHex(g));
    ASSERT_TRUE(hex_round.ok());
    EXPECT_TRUE(*hex_round == g);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WkbRoundTripProperty, ::testing::Range(1, 7));

TEST(ConvertTest, WkbTableJoinsIdenticallyToWktTable) {
  dfs::SimFileSystem fs(2, 16 * 1024);
  CLOUDJOIN_CHECK_OK(fs.WriteTextFile("/taxi.tsv",
                                      data::GenerateTaxiTrips(3000, 3)));
  CLOUDJOIN_CHECK_OK(fs.WriteTextFile(
      "/nycb.tsv", data::GenerateCensusBlocks(15, 15, 4)));
  join::TableInput taxi{"/taxi.tsv", '\t', 0, 1};
  join::TableInput nycb{"/nycb.tsv", '\t', 0, 1};

  auto taxi_bin =
      data::ConvertGeometryColumnToWkbHex(&fs, taxi, "/taxi.wkb.tsv");
  auto nycb_bin =
      data::ConvertGeometryColumnToWkbHex(&fs, nycb, "/nycb.wkb.tsv");
  ASSERT_TRUE(taxi_bin.ok()) << taxi_bin.status();
  ASSERT_TRUE(nycb_bin.ok()) << nycb_bin.status();
  EXPECT_EQ(taxi_bin->encoding, join::GeometryEncoding::kWkbHex);

  join::SpatialSparkSystem spark(&fs, 4);
  auto text_run = spark.Join(taxi, nycb, join::SpatialPredicate::Within());
  auto bin_run =
      spark.Join(*taxi_bin, *nycb_bin, join::SpatialPredicate::Within());
  ASSERT_TRUE(text_run.ok());
  ASSERT_TRUE(bin_run.ok());
  ASSERT_FALSE(text_run->pairs.empty());
  auto a = text_run->pairs;
  auto b = bin_run->pairs;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(ConvertTest, RejectsAlreadyBinarySource) {
  dfs::SimFileSystem fs(2);
  join::TableInput src{"/x", '\t', 0, 1, join::GeometryEncoding::kWkbHex};
  EXPECT_FALSE(
      data::ConvertGeometryColumnToWkbHex(&fs, src, "/y").ok());
}

}  // namespace
}  // namespace cloudjoin::geom
