#include "server/query_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "data/workloads.h"
#include "dfs/sim_file_system.h"
#include "geom/wkt.h"
#include "impala/types.h"
#include "join/isp_mc_system.h"

namespace cloudjoin::server {
namespace {

/// The paper's Fig. 1 query over two service-registered tables.
std::string WorkloadSql(const data::Workload& workload,
                        const std::string& left_name,
                        const std::string& right_name) {
  return "SELECT " + left_name + ".id, " + right_name + ".id FROM " +
         left_name + " SPATIAL JOIN " + right_name + " WHERE " +
         join::PredicateSql(workload.predicate, left_name, right_name);
}

std::vector<std::pair<int64_t, int64_t>> RowsToPairs(
    const std::vector<impala::Row>& rows) {
  std::vector<std::pair<int64_t, int64_t>> pairs;
  pairs.reserve(rows.size());
  for (const impala::Row& row : rows) {
    pairs.emplace_back(std::get<int64_t>(row[0]), std::get<int64_t>(row[1]));
  }
  return pairs;
}

class QueryServiceTest : public ::testing::Test {
 protected:
  QueryServiceTest() : fs_(4, /*block_size=*/16 * 1024) {
    auto suite = data::MaterializeWorkloads(&fs_, /*scale=*/0.02, /*seed=*/7);
    CLOUDJOIN_CHECK(suite.ok()) << suite.status();
    suite_ = std::move(suite).value();
  }

  /// Builds a service with the taxi-nycb workload registered as
  /// taxi/nycb.
  std::unique_ptr<QueryService> MakeService(ServiceOptions options) {
    auto service = std::make_unique<QueryService>(&fs_, options);
    auto taxi = service->RegisterTable("taxi", suite_.taxi_nycb.left);
    CLOUDJOIN_CHECK(taxi.ok()) << taxi.status();
    auto nycb = service->RegisterTable("nycb", suite_.taxi_nycb.right);
    CLOUDJOIN_CHECK(nycb.ok()) << nycb.status();
    return service;
  }

  std::string TaxiNycbSql() const {
    return WorkloadSql(suite_.taxi_nycb, "taxi", "nycb");
  }

  dfs::SimFileSystem fs_;
  data::WorkloadSuite suite_;
};

TEST_F(QueryServiceTest, SecondQueryHitsIndexCache) {
  auto service = MakeService(ServiceOptions());
  Session* session = service->CreateSession();

  Result<QueryResponse> first = service->Execute(session, TaxiNycbSql());
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->index_cache_hit);
  EXPECT_GT(first->result.metrics.right_build_seconds, 0.0);
  EXPECT_FALSE(first->result.rows.empty());

  Result<QueryResponse> second = service->Execute(session, TaxiNycbSql());
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->index_cache_hit);
  EXPECT_EQ(second->result.metrics.right_build_seconds, 0.0);
  EXPECT_EQ(second->result.metrics.counters.Get("join.index_cache_hit"), 1);

  EXPECT_EQ(RowsToPairs(first->result.rows), RowsToPairs(second->result.rows));

  ServiceStats stats = service->GetStats();
  EXPECT_EQ(stats.queries_ok, 2);
  EXPECT_EQ(stats.cache.insertions, 1);
  EXPECT_EQ(stats.cache.hits, 1);
  EXPECT_GT(stats.cache.bytes, 0);
}

TEST_F(QueryServiceTest, ResultsByteIdenticalWithCacheOnAndOff) {
  ServiceOptions cached;
  cached.enable_cache = true;
  ServiceOptions uncached;
  uncached.enable_cache = false;
  auto service_on = MakeService(cached);
  auto service_off = MakeService(uncached);
  Session* session_on = service_on->CreateSession();
  Session* session_off = service_off->CreateSession();

  for (int round = 0; round < 2; ++round) {
    Result<QueryResponse> on = service_on->Execute(session_on, TaxiNycbSql());
    Result<QueryResponse> off =
        service_off->Execute(session_off, TaxiNycbSql());
    ASSERT_TRUE(on.ok()) << on.status();
    ASSERT_TRUE(off.ok()) << off.status();
    EXPECT_FALSE(off->index_cache_hit);
    EXPECT_EQ(RowsToPairs(on->result.rows), RowsToPairs(off->result.rows));
  }
  // The uncached service never touched its cache.
  EXPECT_EQ(service_off->GetStats().cache.insertions, 0);
}

TEST_F(QueryServiceTest, ReRegisteringTableInvalidatesCache) {
  auto service = MakeService(ServiceOptions());
  Session* session = service->CreateSession();

  ASSERT_TRUE(service->Execute(session, TaxiNycbSql()).ok());
  auto redef = service->RegisterTable("nycb", suite_.taxi_nycb.right);
  ASSERT_TRUE(redef.ok()) << redef.status();
  EXPECT_GE(service->GetStats().cache.invalidations, 1);

  // Same SQL, but the right table definition is new: must rebuild.
  Result<QueryResponse> after = service->Execute(session, TaxiNycbSql());
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->index_cache_hit);
}

TEST_F(QueryServiceTest, ConcurrentClientsShareOneBuild) {
  ServiceOptions options;
  options.num_threads = 8;
  options.admission.max_concurrent = 8;
  options.admission.max_queue = 32;
  auto service = MakeService(options);

  constexpr int kClients = 8;
  std::vector<std::vector<std::pair<int64_t, int64_t>>> results(kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, &service, &results, &failures, c] {
      Session* session = service->CreateSession();
      Result<QueryResponse> response =
          service->Execute(session, TaxiNycbSql());
      if (!response.ok()) {
        failures.fetch_add(1);
        return;
      }
      results[static_cast<size_t>(c)] = RowsToPairs(response->result.rows);
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0);
  for (int c = 1; c < kClients; ++c) {
    EXPECT_EQ(results[static_cast<size_t>(c)], results[0]) << "client " << c;
  }
  ServiceStats stats = service->GetStats();
  EXPECT_EQ(stats.queries_ok, kClients);
  // Single-flight: all concurrent misses resolve to exactly one build.
  // (A miss-path query looks up twice — before and inside the flight —
  // so total lookups land between kClients and 2 * kClients.)
  EXPECT_EQ(stats.cache.insertions, 1);
  EXPECT_GE(stats.cache.hits, kClients - 1);
  EXPECT_GE(stats.cache.hits + stats.cache.misses, kClients);
  EXPECT_LE(stats.cache.hits + stats.cache.misses, 2 * kClients);
  EXPECT_LE(stats.admission.peak_running, options.admission.max_concurrent);
}

TEST_F(QueryServiceTest, SaturationRejectsCleanly) {
  ServiceOptions options;
  options.admission.max_concurrent = 1;
  options.admission.max_queue = 0;
  options.admission.queue_timeout_seconds = 0.05;
  auto service = MakeService(options);

  constexpr int kClients = 6;
  std::atomic<int> ok{0};
  std::atomic<int> rejected{0};
  std::atomic<int> other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, &service, &ok, &rejected, &other] {
      Session* session = service->CreateSession();
      Result<QueryResponse> response =
          service->Execute(session, TaxiNycbSql());
      if (response.ok()) {
        ok.fetch_add(1);
      } else if (response.status().code() == StatusCode::kResourceExhausted) {
        rejected.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(ok.load(), 1);
  EXPECT_EQ(ok.load() + rejected.load(), kClients);
  ServiceStats stats = service->GetStats();
  EXPECT_EQ(stats.queries_ok, ok.load());
  EXPECT_EQ(stats.queries_rejected, rejected.load());
  EXPECT_LE(stats.admission.peak_running, 1);
}

TEST_F(QueryServiceTest, SessionDefaultsApply) {
  auto service = MakeService(ServiceOptions());
  impala::QueryOptions prepared;
  prepared.prepare_geometries = true;
  Session* fast = service->CreateSession(prepared);
  Session* faithful = service->CreateSession();
  EXPECT_NE(fast->id, faithful->id);

  Result<QueryResponse> a = service->Execute(fast, TaxiNycbSql());
  Result<QueryResponse> b = service->Execute(faithful, TaxiNycbSql());
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  // Different prepare options fingerprint differently: no false sharing.
  EXPECT_FALSE(a->index_cache_hit);
  EXPECT_FALSE(b->index_cache_hit);
  EXPECT_EQ(RowsToPairs(a->result.rows), RowsToPairs(b->result.rows));
  EXPECT_EQ(service->GetStats().cache.insertions, 2);
}

TEST_F(QueryServiceTest, BypassKernelJoinCachesIndex) {
  auto service = std::make_unique<QueryService>(&fs_, ServiceOptions());

  auto parse = [](const std::string& wkt) {
    auto geometry = geom::ReadWkt(wkt);
    CLOUDJOIN_CHECK(geometry.ok()) << geometry.status();
    return std::move(geometry).value();
  };
  std::vector<join::IdGeometry> left;
  left.push_back({1, parse("POINT (2 2)")});
  left.push_back({2, parse("POINT (50 50)")});
  left.push_back({3, parse("POINT (8 8)")});

  std::atomic<int> loads{0};
  auto loader = [&parse, &loads] {
    loads.fetch_add(1);
    std::vector<join::IdGeometry> right;
    right.push_back({10, parse("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")});
    right.push_back(
        {20, parse("POLYGON ((40 40, 60 40, 60 60, 40 60, 40 40))")});
    return right;
  };

  KernelJoinRequest request;
  request.right_name = "grid";
  request.predicate = join::SpatialPredicate::Within();

  Result<KernelJoinResponse> cold =
      service->ExecuteBroadcastJoin(left, request, loader);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->index_cache_hit);
  EXPECT_EQ(loads.load(), 1);

  Result<KernelJoinResponse> warm =
      service->ExecuteBroadcastJoin(left, request, loader);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm->index_cache_hit);
  EXPECT_EQ(loads.load(), 1);  // loader not consulted on the warm path
  EXPECT_EQ(warm->pairs, cold->pairs);
  const std::vector<join::IdPair> expected = {{1, 10}, {2, 20}, {3, 10}};
  EXPECT_EQ(cold->pairs, expected);

  // Bumping the version invalidates the cached identity.
  request.right_version = 1;
  Result<KernelJoinResponse> bumped =
      service->ExecuteBroadcastJoin(left, request, loader);
  ASSERT_TRUE(bumped.ok()) << bumped.status();
  EXPECT_FALSE(bumped->index_cache_hit);
  EXPECT_EQ(loads.load(), 2);
}

TEST_F(QueryServiceTest, StatsToStringMentionsEverySection) {
  auto service = MakeService(ServiceOptions());
  Session* session = service->CreateSession();
  ASSERT_TRUE(service->Execute(session, TaxiNycbSql()).ok());
  const std::string rendered = service->GetStats().ToString();
  EXPECT_NE(rendered.find("queries:"), std::string::npos);
  EXPECT_NE(rendered.find("admission:"), std::string::npos);
  EXPECT_NE(rendered.find("index cache:"), std::string::npos);
  EXPECT_NE(rendered.find("latency total:"), std::string::npos);
}

TEST_F(QueryServiceTest, IntervalStatsDeltaAgainstLifetime) {
  auto service = MakeService(ServiceOptions());
  Session* session = service->CreateSession();

  // Interval 1: two queries (one cache miss + one hit).
  ASSERT_TRUE(service->Execute(session, TaxiNycbSql()).ok());
  ASSERT_TRUE(service->Execute(session, TaxiNycbSql()).ok());
  ServiceStats first = service->TakeIntervalStats();
  EXPECT_EQ(first.queries_submitted, 2);
  EXPECT_EQ(first.queries_ok, 2);
  // Two lookup misses: the build path re-checks under the flight lock.
  EXPECT_EQ(first.cache.misses, 2);
  EXPECT_EQ(first.cache.hits, 1);
  EXPECT_EQ(first.total_latency.count, 2);
  EXPECT_GT(first.total_latency.max_seconds, 0.0);

  // Interval 2: one query — only the delta shows, not the lifetime.
  ASSERT_TRUE(service->Execute(session, TaxiNycbSql()).ok());
  ServiceStats second = service->TakeIntervalStats();
  EXPECT_EQ(second.queries_submitted, 1);
  EXPECT_EQ(second.cache.misses, 0);
  EXPECT_EQ(second.cache.hits, 1);
  EXPECT_EQ(second.total_latency.count, 1);
  EXPECT_EQ(second.admission.admitted_immediately, 1);

  // Gauges stay current rather than delta'd: the cached index is still
  // resident in the second interval.
  EXPECT_EQ(second.cache.entries, 1);
  EXPECT_GT(second.cache.bytes, 0);

  // Lifetime stats are untouched by interval draining.
  ServiceStats lifetime = service->GetStats();
  EXPECT_EQ(lifetime.queries_submitted, 3);
  EXPECT_EQ(lifetime.total_latency.count, 3);

  // An idle interval reads as all-zero deltas.
  ServiceStats idle = service->TakeIntervalStats();
  EXPECT_EQ(idle.queries_submitted, 0);
  EXPECT_EQ(idle.total_latency.count, 0);
  EXPECT_EQ(idle.cache.hits, 0);
}

}  // namespace
}  // namespace cloudjoin::server
