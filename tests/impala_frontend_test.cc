#include <gtest/gtest.h>

#include "impala/analyzer.h"
#include "impala/lexer.h"
#include "impala/parser.h"
#include "impala/plan.h"

namespace cloudjoin::impala {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT a.x, 'str', 1.5 FROM t WHERE x >= 2;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->front().kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens->front().text, "SELECT");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Tokenize("a <= b >= c <> d != e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<=");
  EXPECT_EQ((*tokens)[3].text, ">=");
  EXPECT_EQ((*tokens)[5].text, "<>");
  EXPECT_EQ((*tokens)[7].text, "!=");
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("SELECT @x").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseSelect("SELECT id, geom FROM pnt");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->select_list.size(), 2u);
  EXPECT_EQ((*stmt)->from.table, "pnt");
  EXPECT_EQ((*stmt)->join_kind, JoinKind::kNone);
}

TEST(ParserTest, SelectStar) {
  auto stmt = ParseSelect("SELECT * FROM t WHERE x > 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE((*stmt)->select_list.empty());
  ASSERT_NE((*stmt)->where, nullptr);
}

TEST(ParserTest, SpatialJoinPaperQuery) {
  // Fig. 1 of the paper, verbatim modulo table names.
  auto stmt = ParseSelect(
      "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
      "WHERE ST_WITHIN (pnt.geom, poly.geom)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->join_kind, JoinKind::kSpatial);
  EXPECT_EQ((*stmt)->join_table.table, "poly");
  ASSERT_NE((*stmt)->where, nullptr);
  EXPECT_EQ((*stmt)->where->kind, AstExpr::Kind::kFunctionCall);
  EXPECT_EQ((*stmt)->where->func_name, "ST_WITHIN");
}

TEST(ParserTest, NearestDQuery) {
  auto stmt = ParseSelect(
      "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
      "WHERE ST_NearestD (pnt.geom, poly.geom, 5000)");
  ASSERT_TRUE(stmt.ok());
  const AstExpr& call = *(*stmt)->where;
  ASSERT_EQ(call.args.size(), 3u);
  EXPECT_EQ(call.args[2]->int_value, 5000);
}

TEST(ParserTest, AliasesAndQualifiedRefs) {
  auto stmt = ParseSelect("SELECT p.id FROM pickups p SPATIAL JOIN zones z "
                          "WHERE ST_WITHIN(p.geom, z.geom)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->from.alias, "p");
  EXPECT_EQ((*stmt)->join_table.alias, "z");
}

TEST(ParserTest, GroupByAndLimit) {
  auto stmt = ParseSelect(
      "SELECT zone, COUNT(*) AS n FROM t GROUP BY zone LIMIT 10");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->group_by.size(), 1u);
  EXPECT_EQ((*stmt)->limit, 10);
  EXPECT_EQ((*stmt)->select_list[1].alias, "n");
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseSelect("SELECT * FROM t WHERE a = 1 AND b = 2 OR c = 3");
  ASSERT_TRUE(stmt.ok());
  // OR binds loosest.
  EXPECT_EQ((*stmt)->where->op, "OR");
  EXPECT_EQ((*stmt)->where->lhs->op, "AND");
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = ParseSelect("SELECT * FROM t WHERE a + b * 2 > 10");
  ASSERT_TRUE(stmt.ok());
  const AstExpr& cmp = *(*stmt)->where;
  EXPECT_EQ(cmp.op, ">");
  EXPECT_EQ(cmp.lhs->op, "+");
  EXPECT_EQ(cmp.lhs->rhs->op, "*");
}

TEST(ParserTest, CrossJoin) {
  auto stmt = ParseSelect("SELECT * FROM a CROSS JOIN b WHERE a.x = b.y");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->join_kind, JoinKind::kCross);
}

TEST(ParserTest, InnerJoinWithOn) {
  auto stmt = ParseSelect("SELECT * FROM a JOIN b ON a.x = b.y");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->join_kind, JoinKind::kInner);
  ASSERT_NE((*stmt)->join_on, nullptr);
}

TEST(ParserTest, NegativeNumbers) {
  auto stmt = ParseSelect("SELECT * FROM t WHERE x > -5.5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->where->rhs->kind, AstExpr::Kind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ((*stmt)->where->rhs->double_value, -5.5);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("UPDATE t SET x = 1").ok());
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t extra junk here").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t LIMIT abc").ok());
}

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalyzerTest() {
    RegisterSpatialUdfs();
    TableDef pnt;
    pnt.name = "pnt";
    pnt.dfs_path = "/pnt";
    pnt.columns = {{"id", ColumnType::kInt64},
                   {"geom", ColumnType::kString},
                   {"fare", ColumnType::kDouble}};
    TableDef poly;
    poly.name = "poly";
    poly.dfs_path = "/poly";
    poly.columns = {{"id", ColumnType::kInt64},
                    {"geom", ColumnType::kString},
                    {"zone", ColumnType::kString}};
    CLOUDJOIN_CHECK_OK(catalog_.RegisterTable(pnt));
    CLOUDJOIN_CHECK_OK(catalog_.RegisterTable(poly));
  }

  Result<std::unique_ptr<AnalyzedQuery>> Analyze(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    if (!stmt.ok()) return stmt.status();
    Analyzer analyzer(&catalog_);
    return analyzer.Analyze(**stmt);
  }

  Catalog catalog_;
};

TEST_F(AnalyzerTest, ExtractsSpatialJoinSpec) {
  auto q = Analyze(
      "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
      "WHERE ST_WITHIN(pnt.geom, poly.geom)");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE((*q)->spatial_join.has_value());
  EXPECT_EQ((*q)->spatial_join->predicate, SpatialJoinSpec::Predicate::kWithin);
  EXPECT_EQ((*q)->spatial_join->left_geom_slot, 1);
  EXPECT_EQ((*q)->spatial_join->right_geom_slot, 1);
  EXPECT_EQ((*q)->projections.size(), 2u);
}

TEST_F(AnalyzerTest, NearestDDistanceExtracted) {
  auto q = Analyze(
      "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
      "WHERE ST_NEARESTD(pnt.geom, poly.geom, 500)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ((*q)->spatial_join->predicate,
            SpatialJoinSpec::Predicate::kNearestD);
  EXPECT_DOUBLE_EQ((*q)->spatial_join->distance, 500.0);
}

TEST_F(AnalyzerTest, PushesSingleSidedFilters) {
  auto q = Analyze(
      "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
      "WHERE ST_WITHIN(pnt.geom, poly.geom) AND pnt.fare > 10 "
      "AND poly.zone = 'MN1'");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ((*q)->left_filters.size(), 1u);
  EXPECT_EQ((*q)->right_filters.size(), 1u);
  EXPECT_TRUE((*q)->post_join_filters.empty());
}

TEST_F(AnalyzerTest, SpatialJoinRequiresPredicate) {
  auto q = Analyze("SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly");
  EXPECT_FALSE(q.ok());
}

TEST_F(AnalyzerTest, SpatialArgsMustBeOrientedLeftRight) {
  auto q = Analyze(
      "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
      "WHERE ST_WITHIN(poly.geom, pnt.geom)");
  EXPECT_FALSE(q.ok());
}

TEST_F(AnalyzerTest, UnknownColumnAndTable) {
  EXPECT_FALSE(Analyze("SELECT nope FROM pnt").ok());
  EXPECT_FALSE(Analyze("SELECT id FROM missing").ok());
  EXPECT_FALSE(Analyze("SELECT bogus.id FROM pnt").ok());
}

TEST_F(AnalyzerTest, AmbiguousColumnRejected) {
  EXPECT_FALSE(Analyze("SELECT id FROM pnt SPATIAL JOIN poly "
                       "WHERE ST_WITHIN(pnt.geom, poly.geom)")
                   .ok());
}

TEST_F(AnalyzerTest, SelectStarExpandsBothSides) {
  auto q = Analyze("SELECT * FROM pnt SPATIAL JOIN poly "
                   "WHERE ST_WITHIN(pnt.geom, poly.geom)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ((*q)->projections.size(), 6u);
}

TEST_F(AnalyzerTest, AggregationAnalysis) {
  auto q = Analyze(
      "SELECT poly.zone, COUNT(*) AS cnt FROM pnt SPATIAL JOIN poly "
      "WHERE ST_WITHIN(pnt.geom, poly.geom) GROUP BY poly.zone");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE((*q)->has_aggregation);
  EXPECT_EQ((*q)->group_by.size(), 1u);
  ASSERT_EQ((*q)->aggregates.size(), 1u);
  EXPECT_EQ((*q)->aggregates[0].kind, AggregateSpec::Kind::kCount);
  EXPECT_EQ((*q)->aggregates[0].output_name, "cnt");
}

TEST_F(AnalyzerTest, NonAggregateItemMustBeGrouped) {
  EXPECT_FALSE(
      Analyze("SELECT fare, COUNT(*) FROM pnt GROUP BY id").ok());
}

TEST(PlanTest, SpatialJoinPlanShape) {
  RegisterSpatialUdfs();
  Catalog catalog;
  TableDef pnt;
  pnt.name = "pnt";
  pnt.dfs_path = "/pnt";
  pnt.columns = {{"id", ColumnType::kInt64}, {"geom", ColumnType::kString}};
  TableDef poly = pnt;
  poly.name = "poly";
  CLOUDJOIN_CHECK_OK(catalog.RegisterTable(pnt));
  CLOUDJOIN_CHECK_OK(catalog.RegisterTable(poly));

  auto stmt = ParseSelect(
      "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
      "WHERE ST_WITHIN(pnt.geom, poly.geom)");
  ASSERT_TRUE(stmt.ok());
  Analyzer analyzer(&catalog);
  auto query = analyzer.Analyze(**stmt);
  ASSERT_TRUE(query.ok()) << query.status();
  auto plan = BuildPlan(**query);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_fragments, 3);
  ASSERT_NE(plan->root, nullptr);
  EXPECT_EQ(plan->root->kind, PlanNode::Kind::kSpatialJoin);
  ASSERT_EQ(plan->root->children.size(), 2u);
  EXPECT_EQ(plan->root->children[0]->kind, PlanNode::Kind::kHdfsScan);
  EXPECT_EQ(plan->root->children[1]->kind, PlanNode::Kind::kExchange);
  std::string explain = plan->Explain();
  EXPECT_NE(explain.find("SPATIAL JOIN"), std::string::npos);
  EXPECT_NE(explain.find("BROADCAST"), std::string::npos);
}

}  // namespace
}  // namespace cloudjoin::impala
