#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "index/grid_index.h"
#include "index/quadtree.h"
#include "index/rtree.h"
#include "index/spatial_partitioner.h"
#include "index/str_tree.h"

namespace cloudjoin::index {
namespace {

using geom::Envelope;
using geom::Point;

std::vector<StrTree::Entry> RandomEntries(Rng* rng, int n, double extent) {
  std::vector<StrTree::Entry> entries;
  entries.reserve(n);
  for (int i = 0; i < n; ++i) {
    double x = rng->Uniform(0, extent);
    double y = rng->Uniform(0, extent);
    double w = rng->Uniform(0, extent / 50);
    double h = rng->Uniform(0, extent / 50);
    entries.push_back(StrTree::Entry{Envelope(x, y, x + w, y + h), i});
  }
  return entries;
}

std::set<int64_t> BruteQuery(const std::vector<StrTree::Entry>& entries,
                             const Envelope& query) {
  std::set<int64_t> out;
  for (const auto& e : entries) {
    if (e.envelope.Intersects(query)) out.insert(e.id);
  }
  return out;
}

TEST(StrTreeTest, EmptyTree) {
  StrTree tree({});
  std::vector<int64_t> hits;
  tree.Query(Envelope(0, 0, 100, 100), &hits);
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(tree.NearestEnvelope(Point{0, 0}), -1);
  EXPECT_EQ(tree.num_entries(), 0);
}

TEST(StrTreeTest, SingleEntry) {
  StrTree tree({StrTree::Entry{Envelope(1, 1, 2, 2), 42}});
  std::vector<int64_t> hits;
  tree.Query(Envelope(0, 0, 3, 3), &hits);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42);
  hits.clear();
  tree.Query(Envelope(5, 5, 6, 6), &hits);
  EXPECT_TRUE(hits.empty());
}

TEST(StrTreeTest, HeightGrowsLogarithmically) {
  Rng rng(1);
  StrTree small(RandomEntries(&rng, 9, 100.0));
  EXPECT_EQ(small.height(), 1);
  StrTree big(RandomEntries(&rng, 5000, 100.0));
  EXPECT_GE(big.height(), 3);
  EXPECT_LE(big.height(), 6);
}

TEST(StrTreeTest, MemoryBytesPositive) {
  Rng rng(2);
  StrTree tree(RandomEntries(&rng, 100, 100.0));
  EXPECT_GT(tree.MemoryBytes(), 100 * static_cast<int64_t>(sizeof(StrTree::Entry)));
}

class StrTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(StrTreeProperty, QueryMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 17);
  const int n = 50 + static_cast<int>(rng.UniformInt(2000));
  auto entries = RandomEntries(&rng, n, 1000.0);
  StrTree tree(entries);
  EXPECT_EQ(tree.num_entries(), n);
  for (int trial = 0; trial < 50; ++trial) {
    double x = rng.Uniform(0, 1000);
    double y = rng.Uniform(0, 1000);
    double w = rng.Uniform(0, 200);
    Envelope query(x, y, x + w, y + w);
    std::vector<int64_t> hits;
    tree.Query(query, &hits);
    std::set<int64_t> got(hits.begin(), hits.end());
    EXPECT_EQ(got.size(), hits.size()) << "duplicate results";
    EXPECT_EQ(got, BruteQuery(entries, query));
  }
}

TEST_P(StrTreeProperty, WithinDistanceMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 29);
  auto entries = RandomEntries(&rng, 500, 1000.0);
  StrTree tree(entries);
  for (int trial = 0; trial < 30; ++trial) {
    Point p{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    double d = rng.Uniform(0, 100);
    std::vector<int64_t> hits;
    tree.QueryWithinDistance(p, d, &hits);
    // The filter is an envelope (box) filter: it must be a superset of the
    // exact-distance matches and a subset of box matches.
    Envelope box(p.x - d, p.y - d, p.x + d, p.y + d);
    std::set<int64_t> got(hits.begin(), hits.end());
    EXPECT_EQ(got, BruteQuery(entries, box));
    for (const auto& e : entries) {
      if (e.envelope.Distance(p) <= d) {
        EXPECT_TRUE(got.count(e.id)) << "missed exact match " << e.id;
      }
    }
  }
}

TEST_P(StrTreeProperty, VisitQueryMatchesQuery) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 37);
  const int n = 50 + static_cast<int>(rng.UniformInt(2000));
  auto entries = RandomEntries(&rng, n, 1000.0);
  StrTree tree(entries);
  for (int trial = 0; trial < 50; ++trial) {
    double x = rng.Uniform(-100, 1000);
    double y = rng.Uniform(-100, 1000);
    double w = rng.Uniform(0, 300);
    Envelope query(x, y, x + w, y + w);
    // The statically dispatched visitor fast path must visit exactly the
    // entries the std::function overload reports, in the same order.
    std::vector<int64_t> via_function;
    tree.Query(query, &via_function);
    std::vector<int64_t> via_visitor;
    tree.VisitQuery(query, [&via_visitor](int64_t id) {
      via_visitor.push_back(id);
    });
    EXPECT_EQ(via_visitor, via_function);
    std::set<int64_t> got(via_visitor.begin(), via_visitor.end());
    EXPECT_EQ(got, BruteQuery(entries, query));
  }
}

TEST_P(StrTreeProperty, NearestMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 41);
  auto entries = RandomEntries(&rng, 300, 1000.0);
  StrTree tree(entries);
  for (int trial = 0; trial < 30; ++trial) {
    Point p{rng.Uniform(-100, 1100), rng.Uniform(-100, 1100)};
    int64_t got = tree.NearestEnvelope(p);
    double best = std::numeric_limits<double>::infinity();
    for (const auto& e : entries) {
      best = std::min(best, e.envelope.Distance(p));
    }
    ASSERT_GE(got, 0);
    // Any entry at the minimal distance is acceptable.
    double got_dist = entries[static_cast<size_t>(got)].envelope.Distance(p);
    EXPECT_DOUBLE_EQ(got_dist, best);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrTreeProperty, ::testing::Range(1, 9));

class RTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(RTreeProperty, QueryMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 53);
  const int n = 20 + static_cast<int>(rng.UniformInt(800));
  auto entries = RandomEntries(&rng, n, 500.0);
  RTree tree;
  for (const auto& e : entries) tree.Insert(e.envelope, e.id);
  EXPECT_EQ(tree.size(), n);
  for (int trial = 0; trial < 40; ++trial) {
    double x = rng.Uniform(0, 500);
    double y = rng.Uniform(0, 500);
    double w = rng.Uniform(0, 120);
    Envelope query(x, y, x + w, y + w);
    std::vector<int64_t> hits;
    tree.Query(query, &hits);
    std::set<int64_t> got(hits.begin(), hits.end());
    EXPECT_EQ(got.size(), hits.size());
    EXPECT_EQ(got, BruteQuery(entries, query));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeProperty, ::testing::Range(1, 7));

TEST(RTreeTest, HeightGrowsWithSize) {
  Rng rng(5);
  RTree tree;
  EXPECT_EQ(tree.height(), 1);
  auto entries = RandomEntries(&rng, 1000, 100.0);
  for (const auto& e : entries) tree.Insert(e.envelope, e.id);
  EXPECT_GE(tree.height(), 3);
}

class GridProperty : public ::testing::TestWithParam<int> {};

TEST_P(GridProperty, QueryMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 61);
  Envelope extent(0, 0, 1000, 1000);
  UniformGrid grid(extent, 16, 16);
  auto entries = RandomEntries(&rng, 600, 1000.0);
  for (const auto& e : entries) grid.Insert(e.envelope, e.id);
  EXPECT_EQ(grid.size(), 600);
  for (int trial = 0; trial < 40; ++trial) {
    double x = rng.Uniform(0, 1000);
    double y = rng.Uniform(0, 1000);
    double w = rng.Uniform(0, 150);
    Envelope query(x, y, x + w, y + w);
    std::vector<int64_t> hits;
    grid.Query(query, &hits);
    std::set<int64_t> got(hits.begin(), hits.end());
    EXPECT_EQ(got.size(), hits.size()) << "grid must deduplicate";
    EXPECT_EQ(got, BruteQuery(entries, query));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridProperty, ::testing::Range(1, 7));

TEST(GridTest, CellOfClamps) {
  UniformGrid grid(Envelope(0, 0, 10, 10), 5, 5);
  EXPECT_EQ(grid.CellOf(-100, -100), (std::pair<int, int>{0, 0}));
  EXPECT_EQ(grid.CellOf(100, 100), (std::pair<int, int>{4, 4}));
}

TEST(PartitionerTest, TilesCoverExtentWithoutOverlap) {
  Rng rng(7);
  Envelope extent(0, 0, 100, 100);
  std::vector<Point> sample;
  for (int i = 0; i < 1000; ++i) {
    sample.push_back(Point{rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  SpatialPartitioner part(extent, sample, 16);
  EXPECT_EQ(part.tiles().size(), 16u);
  // Total area preserved (tiles form a binary space partition).
  double area = 0;
  for (const auto& t : part.tiles()) area += t.Area();
  EXPECT_NEAR(area, extent.Area(), 1e-6);
  // Every interior point lands in at least one tile, and pairwise tile
  // interiors do not overlap (checked via area + membership).
  for (int trial = 0; trial < 500; ++trial) {
    Point p{rng.Uniform(0.001, 99.999), rng.Uniform(0.001, 99.999)};
    EXPECT_GE(part.TileOf(p), 0);
  }
}

TEST(PartitionerTest, BalancesSkewedSample) {
  Rng rng(11);
  Envelope extent(0, 0, 100, 100);
  // 90% of points in a small corner.
  std::vector<Point> sample;
  for (int i = 0; i < 2000; ++i) {
    if (i % 10 != 0) {
      sample.push_back(Point{rng.Uniform(0, 10), rng.Uniform(0, 10)});
    } else {
      sample.push_back(Point{rng.Uniform(0, 100), rng.Uniform(0, 100)});
    }
  }
  SpatialPartitioner part(extent, sample, 8);
  // The hot corner must be split: count tiles intersecting it.
  int corner_tiles = 0;
  for (const auto& t : part.tiles()) {
    if (t.Intersects(Envelope(0, 0, 10, 10))) ++corner_tiles;
  }
  EXPECT_GE(corner_tiles, 3);
}

TEST(PartitionerTest, TilesForReplication) {
  Envelope extent(0, 0, 100, 100);
  std::vector<Point> sample = {{25, 50}, {75, 50}};
  SpatialPartitioner part(extent, sample, 2);
  // An envelope spanning the whole extent hits all tiles.
  EXPECT_EQ(part.TilesFor(Envelope(0, 0, 100, 100)).size(),
            part.tiles().size());
}

}  // namespace
}  // namespace cloudjoin::index

namespace cloudjoin::index {
namespace {

class QuadtreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(QuadtreeProperty, QueryMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 71);
  geom::Envelope extent(0, 0, 1000, 1000);
  Quadtree tree(extent, /*max_depth=*/10, /*node_capacity=*/6);
  const int n = 100 + static_cast<int>(rng.UniformInt(1000));
  auto entries = RandomEntries(&rng, n, 1000.0);
  for (const auto& e : entries) tree.Insert(e.envelope, e.id);
  EXPECT_EQ(tree.size(), n);
  EXPECT_GT(tree.NumNodes(), 1);
  for (int trial = 0; trial < 40; ++trial) {
    double x = rng.Uniform(0, 1000);
    double y = rng.Uniform(0, 1000);
    double w = rng.Uniform(0, 150);
    geom::Envelope query(x, y, x + w, y + w);
    std::vector<int64_t> hits;
    tree.Query(query, &hits);
    std::set<int64_t> got(hits.begin(), hits.end());
    EXPECT_EQ(got.size(), hits.size()) << "duplicate results";
    EXPECT_EQ(got, BruteQuery(entries, query));
  }
}

INSTANTIATE_TEST_SUITE_P(QuadSeeds, QuadtreeProperty, ::testing::Range(1, 7));

TEST(QuadtreeTest, RecordsOutsideExtentStayQueryable) {
  Quadtree tree(geom::Envelope(0, 0, 10, 10));
  tree.Insert(geom::Envelope(20, 20, 21, 21), 7);
  std::vector<int64_t> hits;
  tree.Query(geom::Envelope(19, 19, 22, 22), &hits);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7);
}

TEST(QuadtreeTest, SplitsUnderLoad) {
  Rng rng(9);
  Quadtree tree(geom::Envelope(0, 0, 100, 100), 8, 4);
  for (int i = 0; i < 200; ++i) {
    double x = rng.Uniform(0, 99);
    double y = rng.Uniform(0, 99);
    tree.Insert(geom::Envelope(x, y, x + 0.5, y + 0.5), i);
  }
  EXPECT_GT(tree.NumNodes(), 20);
}

}  // namespace
}  // namespace cloudjoin::index
