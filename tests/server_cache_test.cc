#include "server/broadcast_index_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace cloudjoin::server {
namespace {

std::shared_ptr<const void> Payload(int id) {
  return std::make_shared<int>(id);
}

TEST(BroadcastIndexCacheTest, LookupMissThenHit) {
  BroadcastIndexCache cache({/*capacity_bytes=*/1024, /*num_shards=*/1});
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_TRUE(cache.Insert("a", "t", 100, Payload(1)));
  auto hit = cache.LookupAs<int>("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);

  BroadcastIndexCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes, 100);
}

TEST(BroadcastIndexCacheTest, EvictsLeastRecentlyUsed) {
  // Single shard so LRU order is global: capacity holds three 100-byte
  // entries; touching `a` makes `b` the coldest, so inserting `d` must
  // evict `b` (and only `b`).
  BroadcastIndexCache cache({/*capacity_bytes=*/300, /*num_shards=*/1});
  ASSERT_TRUE(cache.Insert("a", "t", 100, Payload(1)));
  ASSERT_TRUE(cache.Insert("b", "t", 100, Payload(2)));
  ASSERT_TRUE(cache.Insert("c", "t", 100, Payload(3)));
  ASSERT_NE(cache.Lookup("a"), nullptr);
  ASSERT_TRUE(cache.Insert("d", "t", 100, Payload(4)));

  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_NE(cache.Lookup("d"), nullptr);
  EXPECT_EQ(cache.GetStats().evictions, 1);
  EXPECT_EQ(cache.GetStats().bytes, 300);
}

TEST(BroadcastIndexCacheTest, ReplacingKeyUpdatesBytes) {
  BroadcastIndexCache cache({/*capacity_bytes=*/1000, /*num_shards=*/1});
  ASSERT_TRUE(cache.Insert("a", "t", 100, Payload(1)));
  ASSERT_TRUE(cache.Insert("a", "t", 250, Payload(2)));
  BroadcastIndexCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes, 250);
  auto hit = cache.LookupAs<int>("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 2);
}

TEST(BroadcastIndexCacheTest, RejectsOversizeValue) {
  BroadcastIndexCache cache({/*capacity_bytes=*/400, /*num_shards=*/4});
  // Per-shard budget is 100 bytes; a 150-byte value can never fit.
  EXPECT_FALSE(cache.Insert("big", "t", 150, Payload(1)));
  BroadcastIndexCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.rejected_oversize, 1);
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes, 0);
}

TEST(BroadcastIndexCacheTest, InvalidateTableDropsOnlyThatTable) {
  BroadcastIndexCache cache({/*capacity_bytes=*/4096, /*num_shards=*/2});
  ASSERT_TRUE(cache.Insert("k1", "nycb", 10, Payload(1)));
  ASSERT_TRUE(cache.Insert("k2", "nycb", 10, Payload(2)));
  ASSERT_TRUE(cache.Insert("k3", "lion", 10, Payload(3)));

  EXPECT_EQ(cache.InvalidateTable("nycb"), 2);
  EXPECT_EQ(cache.Lookup("k1"), nullptr);
  EXPECT_EQ(cache.Lookup("k2"), nullptr);
  EXPECT_NE(cache.Lookup("k3"), nullptr);
  BroadcastIndexCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.invalidations, 2);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes, 10);
}

TEST(BroadcastIndexCacheTest, ClearEmptiesEverything) {
  BroadcastIndexCache cache({/*capacity_bytes=*/4096, /*num_shards=*/4});
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(cache.Insert("k" + std::to_string(i), "t", 8, Payload(i)));
  }
  cache.Clear();
  BroadcastIndexCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes, 0);
  EXPECT_EQ(stats.invalidations, 16);
}

/// 8 threads hammer a shared cache with a hot set (mostly hits) and a
/// cold tail (misses + inserts + evictions). The budget must hold at
/// every instant any thread observes, and the counters must reconcile.
TEST(BroadcastIndexCacheTest, ConcurrentStressHoldsBudgetAndReconciles) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr int64_t kCapacity = 64 * 1024;
  BroadcastIndexCache cache({kCapacity, /*num_shards=*/4});

  std::atomic<int64_t> lookups{0};
  std::atomic<bool> budget_violated{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &lookups, &budget_violated, t] {
      std::mt19937 rng(static_cast<uint32_t>(17 + t));
      std::uniform_int_distribution<int> hot_or_cold(0, 9);
      std::uniform_int_distribution<int> hot_key(0, 3);
      std::uniform_int_distribution<int> cold_key(0, 499);
      std::uniform_int_distribution<int> size(64, 2048);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const bool hot = hot_or_cold(rng) < 8;
        const std::string key =
            hot ? "hot" + std::to_string(hot_key(rng))
                : "cold" + std::to_string(cold_key(rng));
        lookups.fetch_add(1);
        if (cache.Lookup(key) == nullptr) {
          cache.Insert(key, hot ? "hot_table" : "cold_table", size(rng),
                       Payload(i));
        }
        if (cache.GetStats().bytes > kCapacity) budget_violated.store(true);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_FALSE(budget_violated.load());
  BroadcastIndexCache::Stats stats = cache.GetStats();
  EXPECT_LE(stats.bytes, kCapacity);
  EXPECT_LE(stats.bytes, stats.peak_bytes);
  EXPECT_EQ(stats.hits + stats.misses, lookups.load());
  EXPECT_EQ(stats.insertions - stats.evictions - stats.invalidations,
            stats.entries);
  // The hot set is tiny and touched 80% of the time: most lookups hit.
  EXPECT_GT(stats.hits, stats.misses);
}

}  // namespace
}  // namespace cloudjoin::server
