#include "server/broadcast_index_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "exec/built_right.h"
#include "stream/continuous_query.h"

namespace cloudjoin::server {
namespace {

std::shared_ptr<const void> Payload(int id) {
  return std::make_shared<int>(id);
}

TEST(BroadcastIndexCacheTest, LookupMissThenHit) {
  BroadcastIndexCache cache({/*capacity_bytes=*/1024, /*num_shards=*/1});
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_TRUE(cache.Insert("a", "t", 100, Payload(1)));
  auto hit = cache.LookupAs<int>("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);

  BroadcastIndexCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes, 100);
}

TEST(BroadcastIndexCacheTest, EvictsLeastRecentlyUsed) {
  // Single shard so LRU order is global: capacity holds three 100-byte
  // entries; touching `a` makes `b` the coldest, so inserting `d` must
  // evict `b` (and only `b`).
  BroadcastIndexCache cache({/*capacity_bytes=*/300, /*num_shards=*/1});
  ASSERT_TRUE(cache.Insert("a", "t", 100, Payload(1)));
  ASSERT_TRUE(cache.Insert("b", "t", 100, Payload(2)));
  ASSERT_TRUE(cache.Insert("c", "t", 100, Payload(3)));
  ASSERT_NE(cache.Lookup("a"), nullptr);
  ASSERT_TRUE(cache.Insert("d", "t", 100, Payload(4)));

  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_NE(cache.Lookup("d"), nullptr);
  EXPECT_EQ(cache.GetStats().evictions, 1);
  EXPECT_EQ(cache.GetStats().bytes, 300);
}

TEST(BroadcastIndexCacheTest, ReplacingKeyUpdatesBytes) {
  BroadcastIndexCache cache({/*capacity_bytes=*/1000, /*num_shards=*/1});
  ASSERT_TRUE(cache.Insert("a", "t", 100, Payload(1)));
  ASSERT_TRUE(cache.Insert("a", "t", 250, Payload(2)));
  BroadcastIndexCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes, 250);
  auto hit = cache.LookupAs<int>("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 2);
}

TEST(BroadcastIndexCacheTest, RejectsOversizeValue) {
  BroadcastIndexCache cache({/*capacity_bytes=*/400, /*num_shards=*/4});
  // Per-shard budget is 100 bytes; a 150-byte value can never fit.
  EXPECT_FALSE(cache.Insert("big", "t", 150, Payload(1)));
  BroadcastIndexCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.rejected_oversize, 1);
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes, 0);
}

TEST(BroadcastIndexCacheTest, InvalidateTableDropsOnlyThatTable) {
  BroadcastIndexCache cache({/*capacity_bytes=*/4096, /*num_shards=*/2});
  ASSERT_TRUE(cache.Insert("k1", "nycb", 10, Payload(1)));
  ASSERT_TRUE(cache.Insert("k2", "nycb", 10, Payload(2)));
  ASSERT_TRUE(cache.Insert("k3", "lion", 10, Payload(3)));

  EXPECT_EQ(cache.InvalidateTable("nycb"), 2);
  EXPECT_EQ(cache.Lookup("k1"), nullptr);
  EXPECT_EQ(cache.Lookup("k2"), nullptr);
  EXPECT_NE(cache.Lookup("k3"), nullptr);
  BroadcastIndexCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.invalidations, 2);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes, 10);
}

TEST(BroadcastIndexCacheTest, ClearEmptiesEverything) {
  BroadcastIndexCache cache({/*capacity_bytes=*/4096, /*num_shards=*/4});
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(cache.Insert("k" + std::to_string(i), "t", 8, Payload(i)));
  }
  cache.Clear();
  BroadcastIndexCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes, 0);
  EXPECT_EQ(stats.invalidations, 16);
}

/// InvalidateTable landing in the middle of a single-flight build: the
/// builder is gated on a promise (no sleeps — every ordering below is
/// forced, in the spirit of the fake-clock admission tests), the
/// invalidation runs while the build is provably in flight, and the build
/// then completes and inserts. The stale artifact may linger under its
/// OLD generation-fenced key — that is the documented benign race — but a
/// resolver keyed on the table's new generation never serves it, and a
/// second invalidation reaps it.
TEST(BroadcastIndexCacheTest, InvalidateTableRacingSingleFlightBuild) {
  BroadcastIndexCache cache({/*capacity_bytes=*/1 << 20, /*num_shards=*/1});
  stream::CachedRightResolver resolver(&cache);

  auto stale = std::make_shared<const exec::BuiltRight>();
  auto fresh = std::make_shared<const exec::BuiltRight>();
  std::promise<void> build_started;
  std::promise<void> release_build;
  std::shared_future<void> release = release_build.get_future().share();
  std::atomic<int> builds{0};

  // Generation-fenced keys, as ContinuousQueryRegistry::ResolveRight
  // derives them from Catalog::TableGeneration.
  const std::string old_key = "stream|t|gen=1|within";
  const std::string new_key = "stream|t|gen=2|within";

  std::thread racer([&]() {
    bool hit = true;
    auto result = resolver.GetOrBuild(
        old_key, "t",
        [&]() {
          ++builds;
          build_started.set_value();
          release.wait();  // hold the build open while we invalidate
          return Result<std::shared_ptr<const exec::BuiltRight>>(stale);
        },
        &hit);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(hit);
    EXPECT_EQ(result.value().get(), stale.get());
  });

  build_started.get_future().wait();
  // The table is dropped/replaced while the old build is mid-flight;
  // nothing is resident yet, so there is nothing to reap.
  EXPECT_EQ(cache.InvalidateTable("t"), 0);
  release_build.set_value();
  racer.join();

  // The straggler insert landed under the old-generation key: present,
  // but unreachable by any caller using the post-invalidation key.
  EXPECT_NE(cache.Lookup(old_key), nullptr);

  bool hit = true;
  auto rebuilt = resolver.GetOrBuild(
      new_key, "t",
      [&]() {
        ++builds;
        return Result<std::shared_ptr<const exec::BuiltRight>>(fresh);
      },
      &hit);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(hit);  // new generation never sees the stale artifact
  EXPECT_EQ(rebuilt.value().get(), fresh.get());
  EXPECT_EQ(builds.load(), 2);

  // The next invalidation reaps both generations' entries.
  EXPECT_EQ(cache.InvalidateTable("t"), 2);
  EXPECT_EQ(cache.Lookup(old_key), nullptr);
  EXPECT_EQ(cache.Lookup(new_key), nullptr);
  EXPECT_EQ(cache.GetStats().entries, 0);
}

/// 8 threads hammer a shared cache with a hot set (mostly hits) and a
/// cold tail (misses + inserts + evictions). The budget must hold at
/// every instant any thread observes, and the counters must reconcile.
TEST(BroadcastIndexCacheTest, ConcurrentStressHoldsBudgetAndReconciles) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr int64_t kCapacity = 64 * 1024;
  BroadcastIndexCache cache({kCapacity, /*num_shards=*/4});

  std::atomic<int64_t> lookups{0};
  std::atomic<bool> budget_violated{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &lookups, &budget_violated, t] {
      std::mt19937 rng(static_cast<uint32_t>(17 + t));
      std::uniform_int_distribution<int> hot_or_cold(0, 9);
      std::uniform_int_distribution<int> hot_key(0, 3);
      std::uniform_int_distribution<int> cold_key(0, 499);
      std::uniform_int_distribution<int> size(64, 2048);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const bool hot = hot_or_cold(rng) < 8;
        const std::string key =
            hot ? "hot" + std::to_string(hot_key(rng))
                : "cold" + std::to_string(cold_key(rng));
        lookups.fetch_add(1);
        if (cache.Lookup(key) == nullptr) {
          cache.Insert(key, hot ? "hot_table" : "cold_table", size(rng),
                       Payload(i));
        }
        if (cache.GetStats().bytes > kCapacity) budget_violated.store(true);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_FALSE(budget_violated.load());
  BroadcastIndexCache::Stats stats = cache.GetStats();
  EXPECT_LE(stats.bytes, kCapacity);
  EXPECT_LE(stats.bytes, stats.peak_bytes);
  EXPECT_EQ(stats.hits + stats.misses, lookups.load());
  EXPECT_EQ(stats.insertions - stats.evictions - stats.invalidations,
            stats.entries);
  // The hot set is tiny and touched 80% of the time: most lookups hit.
  EXPECT_GT(stats.hits, stats.misses);
}

}  // namespace
}  // namespace cloudjoin::server
