#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "common/counters.h"
#include "common/flags.h"
#include "common/histogram.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace cloudjoin {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad x");
  EXPECT_EQ(s.ToString(), "invalid argument: bad x");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kParseError, StatusCode::kIoError,
        StatusCode::kResourceExhausted}) {
    EXPECT_STRNE(StatusCodeToString(code), "unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x * 2;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bad.value_or(7), 7);
}

Result<int> ChainedHelper(int x) {
  CLOUDJOIN_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*ChainedHelper(5), 11);
  EXPECT_FALSE(ChainedHelper(-5).ok());
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = StrSplit("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = StrSplit("solo", '\t');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "solo");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(StrTrim("  x y \t\n"), "x y");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -1e3 "), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("12345"), 12345);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_FALSE(ParseInt64("12.5").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringsTest, StartsWithIgnoreCase) {
  EXPECT_TRUE(StartsWithIgnoreCase("SELECT * FROM", "select"));
  EXPECT_FALSE(StartsWithIgnoreCase("SEL", "select"));
}

TEST(StringsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MB");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(99);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(CountersTest, AddAndGet) {
  Counters c;
  EXPECT_EQ(c.Get("x"), 0);
  c.Add("x", 5);
  c.Add("x", 2);
  EXPECT_EQ(c.Get("x"), 7);
}

TEST(CountersTest, MergeAndCopy) {
  Counters a, b;
  a.Add("x", 1);
  b.Add("x", 2);
  b.Add("y", 3);
  a.MergeFrom(b);
  EXPECT_EQ(a.Get("x"), 3);
  EXPECT_EQ(a.Get("y"), 3);
  Counters copy = a;
  EXPECT_EQ(copy.Get("x"), 3);
}

TEST(FlagsTest, ParsesKeyValueAndPositional) {
  const char* argv[] = {"prog", "--scale=2.5", "--nodes=10", "--verbose",
                        "input.txt"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 2.5);
  EXPECT_EQ(flags.GetInt("nodes", 1), 10);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("quiet", false));
  EXPECT_EQ(flags.GetString("missing", "dflt"), "dflt");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  ParallelFor(&pool, 50, [&hits](int64_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(w.ElapsedNanos(), 0);
  EXPECT_GE(w.ElapsedSeconds(), 0.0);
}

TEST(LatencyHistogramTest, EmptySnapshotIsZero) {
  LatencyHistogram histogram;
  LatencyHistogram::Snapshot snapshot = histogram.TakeSnapshot();
  EXPECT_EQ(snapshot.count, 0);
  EXPECT_EQ(snapshot.MeanSeconds(), 0.0);
  EXPECT_EQ(snapshot.PercentileSeconds(0.5), 0.0);
}

TEST(LatencyHistogramTest, TracksCountSumMinMax) {
  LatencyHistogram histogram;
  histogram.Record(0.001);
  histogram.Record(0.010);
  histogram.Record(0.100);
  LatencyHistogram::Snapshot snapshot = histogram.TakeSnapshot();
  EXPECT_EQ(snapshot.count, 3);
  EXPECT_DOUBLE_EQ(snapshot.sum_seconds, 0.111);
  EXPECT_DOUBLE_EQ(snapshot.min_seconds, 0.001);
  EXPECT_DOUBLE_EQ(snapshot.max_seconds, 0.100);
  EXPECT_NEAR(snapshot.MeanSeconds(), 0.037, 1e-12);
}

TEST(LatencyHistogramTest, PercentilesAreMonotoneAndBracketed) {
  LatencyHistogram histogram;
  for (int i = 1; i <= 100; ++i) {
    histogram.Record(i * 0.001);  // 1ms .. 100ms
  }
  LatencyHistogram::Snapshot snapshot = histogram.TakeSnapshot();
  const double p50 = snapshot.PercentileSeconds(0.50);
  const double p95 = snapshot.PercentileSeconds(0.95);
  const double p99 = snapshot.PercentileSeconds(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log-bucketed estimates carry < kGrowth relative error.
  EXPECT_NEAR(p50, 0.050, 0.050 * LatencyHistogram::kGrowth);
  EXPECT_GE(p99, 0.090);
  EXPECT_LE(p99, snapshot.max_seconds);
  EXPECT_GE(p50, snapshot.min_seconds);
}

TEST(LatencyHistogramTest, TightDistributionP50NotInflatedToBucketBound) {
  // 99 samples at a value sitting just above a bucket's lower bound, plus
  // one large outlier (so the max clamp cannot mask the estimate). The old
  // upper-bound estimate reported ~1.2x the true p50 — a full kGrowth
  // factor of bias; rank interpolation keeps it within ~half a bucket.
  const double v =
      LatencyHistogram::kMinSeconds * std::pow(LatencyHistogram::kGrowth, 40) *
      1.0001;
  LatencyHistogram histogram;
  for (int i = 0; i < 99; ++i) histogram.Record(v);
  histogram.Record(1.0);
  const double p50 = histogram.TakeSnapshot().PercentileSeconds(0.50);
  EXPECT_GE(p50, v * 0.95);
  EXPECT_LE(p50, v * 1.11);
}

TEST(LatencyHistogramTest, PercentilesMatchSortedSampleOracle) {
  // Property test: against the exact nearest-rank percentile of the sorted
  // samples, the histogram estimate must stay within one bucket width
  // (relative error < kGrowth - 1) for every quantile tested.
  Rng rng(4242);
  LatencyHistogram histogram;
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) {
    // Log-uniform over ~6 decades, the realistic latency range.
    const double s = std::pow(10.0, rng.Uniform(-6.0, 0.5));
    samples.push_back(s);
    histogram.Record(s);
  }
  std::sort(samples.begin(), samples.end());
  LatencyHistogram::Snapshot snapshot = histogram.TakeSnapshot();
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}) {
    const auto rank = static_cast<size_t>(std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(q * samples.size()))));
    const double oracle = samples[rank - 1];
    const double estimate = snapshot.PercentileSeconds(q);
    EXPECT_NEAR(estimate, oracle,
                oracle * (LatencyHistogram::kGrowth - 1.0) + 1e-9)
        << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MergeFromCombines) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(0.001);
  b.Record(0.100);
  a.MergeFrom(b);
  LatencyHistogram::Snapshot snapshot = a.TakeSnapshot();
  EXPECT_EQ(snapshot.count, 2);
  EXPECT_DOUBLE_EQ(snapshot.min_seconds, 0.001);
  EXPECT_DOUBLE_EQ(snapshot.max_seconds, 0.100);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllLand) {
  LatencyHistogram histogram;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < 1000; ++i) histogram.Record(0.001);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.TakeSnapshot().count, 4000);
}

TEST(LatencyHistogramTest, MergeSnapshotAddsBucketwise) {
  // The per-window -> stream-lifetime rollup: merging N window snapshots
  // into a fresh histogram must reproduce exactly what recording every
  // sample into one histogram would have, including samples that sit
  // exactly ON bucket boundaries (kMinSeconds * kGrowth^i), where a
  // re-bucketing implementation would be most likely to shift them.
  std::vector<double> samples;
  for (int i : {0, 1, 17, 40, 41, 90}) {
    samples.push_back(LatencyHistogram::kMinSeconds *
                      std::pow(LatencyHistogram::kGrowth, i));
  }
  samples.push_back(0.0);                              // clamps to bucket 0
  samples.push_back(LatencyHistogram::kMinSeconds / 2);  // below the floor

  LatencyHistogram oracle;
  LatencyHistogram merged;
  for (size_t i = 0; i < samples.size(); ++i) {
    oracle.Record(samples[i]);
    // Each "window": a throwaway histogram holding one sample.
    LatencyHistogram window;
    window.Record(samples[i]);
    merged.Merge(window.TakeSnapshot());
  }

  LatencyHistogram::Snapshot want = oracle.TakeSnapshot();
  LatencyHistogram::Snapshot got = merged.TakeSnapshot();
  EXPECT_EQ(got.count, want.count);
  EXPECT_DOUBLE_EQ(got.sum_seconds, want.sum_seconds);
  EXPECT_DOUBLE_EQ(got.min_seconds, want.min_seconds);
  EXPECT_DOUBLE_EQ(got.max_seconds, want.max_seconds);
  EXPECT_EQ(got.buckets, want.buckets);
  for (double q : {0.25, 0.50, 0.75, 0.99}) {
    EXPECT_DOUBLE_EQ(got.PercentileSeconds(q), want.PercentileSeconds(q));
  }
}

TEST(LatencyHistogramTest, MergeEmptySnapshotKeepsMinMax) {
  LatencyHistogram histogram;
  histogram.Record(0.005);
  LatencyHistogram empty;
  histogram.Merge(empty.TakeSnapshot());
  LatencyHistogram::Snapshot snapshot = histogram.TakeSnapshot();
  EXPECT_EQ(snapshot.count, 1);
  // An empty snapshot's zero min must not clobber the recorded min.
  EXPECT_DOUBLE_EQ(snapshot.min_seconds, 0.005);
  EXPECT_DOUBLE_EQ(snapshot.max_seconds, 0.005);
}

TEST(LatencyHistogramTest, TakeSnapshotAndResetDrainsAndRestarts) {
  LatencyHistogram histogram;
  histogram.Record(0.010);
  histogram.Record(0.020);

  LatencyHistogram::Snapshot first = histogram.TakeSnapshotAndReset();
  EXPECT_EQ(first.count, 2);
  EXPECT_DOUBLE_EQ(first.min_seconds, 0.010);

  // Drained: the histogram starts a fresh interval.
  EXPECT_EQ(histogram.TakeSnapshot().count, 0);
  histogram.Record(0.500);
  LatencyHistogram::Snapshot second = histogram.TakeSnapshotAndReset();
  EXPECT_EQ(second.count, 1);
  EXPECT_DOUBLE_EQ(second.min_seconds, 0.500);
  EXPECT_DOUBLE_EQ(second.max_seconds, 0.500);

  // The drained snapshots still roll up to the lifetime distribution.
  LatencyHistogram lifetime;
  lifetime.Merge(first);
  lifetime.Merge(second);
  EXPECT_EQ(lifetime.TakeSnapshot().count, 3);
}

TEST(FormatDurationTest, PicksReadableUnits) {
  EXPECT_EQ(FormatDuration(0.000741), "741us");
  EXPECT_NE(FormatDuration(0.0123).find("ms"), std::string::npos);
  EXPECT_NE(FormatDuration(4.2).find("s"), std::string::npos);
}

}  // namespace
}  // namespace cloudjoin
