#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "data/generators.h"
#include "data/workloads.h"
#include "dfs/sim_file_system.h"
#include "geom/algorithms.h"
#include "geom/predicates.h"
#include "geom/wkt.h"

namespace cloudjoin::data {
namespace {

/// Parses "id \t wkt \t attr" and returns the geometry.
geom::Geometry ParseLineGeometry(const std::string& line) {
  auto fields = StrSplit(line, '\t');
  CLOUDJOIN_CHECK(fields.size() == 3u);
  auto g = geom::ReadWkt(fields[1]);
  CLOUDJOIN_CHECK(g.ok()) << g.status();
  return std::move(g).value();
}

TEST(GeneratorsTest, Deterministic) {
  EXPECT_EQ(GenerateTaxiTrips(100, 42), GenerateTaxiTrips(100, 42));
  EXPECT_NE(GenerateTaxiTrips(100, 42), GenerateTaxiTrips(100, 43));
  EXPECT_EQ(GenerateEcoregions(20, 1), GenerateEcoregions(20, 1));
}

TEST(GeneratorsTest, IdsEqualLineNumbers) {
  auto lines = GenerateTaxiTrips(50, 9);
  for (size_t i = 0; i < lines.size(); ++i) {
    auto fields = StrSplit(lines[i], '\t');
    EXPECT_EQ(*ParseInt64(fields[0]), static_cast<int64_t>(i));
  }
}

TEST(GeneratorsTest, TaxiPointsMostlyInExtent) {
  auto lines = GenerateTaxiTrips(2000, 11);
  ASSERT_EQ(lines.size(), 2000u);
  geom::Envelope extent = NycExtent();
  int inside = 0;
  for (const auto& line : lines) {
    geom::Geometry g = ParseLineGeometry(line);
    ASSERT_EQ(g.type(), geom::GeometryType::kPoint);
    if (extent.Contains(g.FirstPoint())) ++inside;
  }
  EXPECT_GT(inside, 1600);  // ~80 %+ inside; noise outside is intended
}

TEST(GeneratorsTest, TaxiPointsAreSkewed) {
  // Hotspot clustering: the densest 10% of the extent should hold far
  // more than 10% of the points.
  auto lines = GenerateTaxiTrips(5000, 13);
  geom::Envelope manhattan(970000, 180000, 1020000, 265000);
  int hot = 0;
  for (const auto& line : lines) {
    if (manhattan.Contains(ParseLineGeometry(line).FirstPoint())) ++hot;
  }
  double hot_fraction = static_cast<double>(hot) / 5000;
  double area_fraction = manhattan.Area() / NycExtent().Area();
  EXPECT_GT(hot_fraction, 2.0 * area_fraction);
}

TEST(GeneratorsTest, CensusBlocksTileTheExtent) {
  // The tiling property: every random interior point falls in >= 1 block,
  // and (except for shared boundaries) exactly one.
  auto lines = GenerateCensusBlocks(12, 12, 17);
  ASSERT_EQ(lines.size(), 144u);
  std::vector<geom::Geometry> blocks;
  int64_t total_vertices = 0;
  for (const auto& line : lines) {
    blocks.push_back(ParseLineGeometry(line));
    EXPECT_EQ(blocks.back().type(), geom::GeometryType::kPolygon);
    total_vertices += blocks.back().NumCoords();
  }
  // ~9 vertices per polygon (8 + closing), as in the paper's nycb.
  EXPECT_NEAR(static_cast<double>(total_vertices) / 144.0, 9.0, 0.01);

  Rng rng(3);
  geom::Envelope extent = NycExtent();
  for (int trial = 0; trial < 300; ++trial) {
    geom::Point p{rng.Uniform(extent.min_x() + 1000, extent.max_x() - 1000),
                  rng.Uniform(extent.min_y() + 1000, extent.max_y() - 1000)};
    int count = 0;
    for (const auto& block : blocks) {
      if (geom::PointInPolygon(p, block)) ++count;
    }
    EXPECT_GE(count, 1) << "gap at " << p.x << "," << p.y;
    EXPECT_LE(count, 2) << "overlap at " << p.x << "," << p.y;
  }
}

TEST(GeneratorsTest, StreetsAreShortPolylines) {
  auto lines = GenerateStreets(500, 23);
  ASSERT_EQ(lines.size(), 500u);
  for (const auto& line : lines) {
    geom::Geometry g = ParseLineGeometry(line);
    EXPECT_EQ(g.type(), geom::GeometryType::kLineString);
    EXPECT_GE(g.NumCoords(), 2);
    EXPECT_LE(g.NumCoords(), 5);
  }
}

TEST(GeneratorsTest, EcoregionVertexStatistics) {
  auto lines = GenerateEcoregions(400, 29, /*mean_vertices=*/279);
  int64_t total_vertices = 0;
  for (const auto& line : lines) {
    geom::Geometry g = ParseLineGeometry(line);
    EXPECT_EQ(g.type(), geom::GeometryType::kPolygon);
    total_vertices += g.NumCoords() - 1;  // exclude closing vertex
  }
  double mean = static_cast<double>(total_vertices) / 400.0;
  EXPECT_GT(mean, 279 * 0.7);
  EXPECT_LT(mean, 279 * 1.3);
}

TEST(GeneratorsTest, EcoregionsAreValidSimplePolygons) {
  auto lines = GenerateEcoregions(50, 31);
  for (const auto& line : lines) {
    geom::Geometry g = ParseLineGeometry(line);
    // Star-shaped construction => the centroid is interior.
    geom::Point c = g.envelope().Center();
    // Not asserting containment of the box center (concave shapes), but
    // the ring must close and have positive area.
    auto ring = g.Ring(0, 0);
    EXPECT_EQ(ring.front(), ring.back());
    EXPECT_GT(std::abs(geom::SignedRingArea(ring)), 0.0);
    (void)c;
  }
}

TEST(GeneratorsTest, SpeciesOccurrencesLandOnEcoregions) {
  // The join must be non-degenerate: a healthy fraction of occurrences
  // fall inside at least one ecoregion.
  auto point_lines = GenerateSpeciesOccurrences(500, 37);
  auto region_lines = GenerateEcoregions(2000, 41);
  std::vector<geom::Geometry> regions;
  for (const auto& line : region_lines) {
    regions.push_back(ParseLineGeometry(line));
  }
  int matched = 0;
  for (const auto& line : point_lines) {
    geom::Point p = ParseLineGeometry(line).FirstPoint();
    for (const auto& region : regions) {
      if (geom::PointInPolygon(p, region)) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_GT(matched, 100) << "join would be degenerate";
}

TEST(WorkloadsTest, MaterializeWritesAllFiles) {
  dfs::SimFileSystem fs(4, 32 * 1024);
  auto suite = MaterializeWorkloads(&fs, 0.05, 5);
  ASSERT_TRUE(suite.ok()) << suite.status();
  for (const char* path : {"/data/taxi.tsv", "/data/nycb.tsv",
                           "/data/lion.tsv", "/data/g10m.tsv",
                           "/data/wwf.tsv"}) {
    EXPECT_TRUE(fs.Exists(path)) << path;
  }
  EXPECT_EQ(suite->taxi_nycb.left.path, "/data/taxi.tsv");
  EXPECT_EQ(suite->taxi_lion_500.predicate.distance, 500.0);
  EXPECT_EQ(suite->g10m_wwf.predicate.op, join::SpatialOperator::kWithin);
  EXPECT_GT(suite->taxi_count, 0);
}

TEST(WorkloadsTest, ScaleControlsPointCounts) {
  dfs::SimFileSystem fs(2, 64 * 1024);
  auto small = MaterializeWorkloads(&fs, 0.02, 5);
  ASSERT_TRUE(small.ok());
  dfs::SimFileSystem fs2(2, 64 * 1024);
  auto large = MaterializeWorkloads(&fs2, 0.08, 5);
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->taxi_count, small->taxi_count);
  EXPECT_GT(large->gbif_count, small->gbif_count);
}

TEST(WorkloadsTest, RejectsNonPositiveScale) {
  dfs::SimFileSystem fs(2);
  EXPECT_FALSE(MaterializeWorkloads(&fs, 0.0, 5).ok());
  EXPECT_FALSE(MaterializeWorkloads(&fs, -1.0, 5).ok());
}

}  // namespace
}  // namespace cloudjoin::data
