#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/predicates.h"
#include "geom/wkt.h"
#include "geosim/geometry.h"
#include "geosim/operations.h"
#include "geosim/wkt_reader.h"

namespace cloudjoin::geosim {
namespace {

const GeometryFactory& Factory() {
  static const GeometryFactory factory;
  return factory;
}

std::unique_ptr<Geometry> Parse(const std::string& wkt) {
  WKTReader reader(&Factory());
  auto g = reader.read(wkt);
  EXPECT_TRUE(g.ok()) << wkt << ": " << g.status();
  return std::move(g).value();
}

TEST(GeosimFactoryTest, CreatesPoint) {
  auto p = Factory().createPoint(Coordinate(3, 4));
  EXPECT_EQ(p->getGeometryTypeId(), GeometryTypeId::kPoint);
  EXPECT_EQ(p->getX(), 3);
  EXPECT_EQ(p->getY(), 4);
  EXPECT_EQ(p->getNumPoints(), 1u);
}

TEST(GeosimFactoryTest, LinearRingAutoCloses) {
  auto ring = Factory().createLinearRing({{0, 0}, {4, 0}, {4, 4}});
  EXPECT_EQ(ring->getNumPoints(), 4u);  // closing vertex added
}

TEST(GeosimTest, EnvelopeLazilyComputedAndCached) {
  auto line = Factory().createLineString({{0, 0}, {10, 5}});
  const geom::Envelope& env1 = line->getEnvelopeInternal();
  const geom::Envelope& env2 = line->getEnvelopeInternal();
  EXPECT_EQ(&env1, &env2);  // cached
  EXPECT_EQ(env1.max_x(), 10);
  EXPECT_EQ(env1.max_y(), 5);
}

TEST(GeosimTest, WithinPolygon) {
  auto poly = Parse("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  auto inside = Factory().createPoint(Coordinate(5, 5));
  auto outside = Factory().createPoint(Coordinate(15, 5));
  EXPECT_TRUE(inside->within(poly.get()));
  EXPECT_FALSE(outside->within(poly.get()));
}

TEST(GeosimTest, WithinRespectsHoles) {
  auto poly = Parse(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (3 3, 7 3, 7 7, 3 7, 3 3))");
  EXPECT_FALSE(Factory().createPoint(Coordinate(5, 5))->within(poly.get()));
  EXPECT_TRUE(Factory().createPoint(Coordinate(1, 1))->within(poly.get()));
}

TEST(GeosimTest, DistancePointToLine) {
  auto line = Parse("LINESTRING (0 0, 10 0)");
  auto p = Factory().createPoint(Coordinate(5, 3));
  EXPECT_DOUBLE_EQ(p->distance(line.get()), 3.0);
  EXPECT_TRUE(p->isWithinDistance(line.get(), 3.0));
  EXPECT_FALSE(p->isWithinDistance(line.get(), 2.9));
}

TEST(GeosimTest, DistanceInsidePolygonIsZero) {
  auto poly = Parse("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  auto p = Factory().createPoint(Coordinate(5, 5));
  EXPECT_EQ(p->distance(poly.get()), 0.0);
}

TEST(GeosimTest, IntersectsPolygons) {
  auto a = Parse("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  auto b = Parse("POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))");
  auto c = Parse("POLYGON ((20 20, 30 20, 30 30, 20 30, 20 20))");
  EXPECT_TRUE(a->intersects(b.get()));
  EXPECT_FALSE(a->intersects(c.get()));
}

TEST(GeosimTest, RayCrossingCounter) {
  RayCrossingCounter counter(Coordinate(5, 5));
  counter.countSegment({0, 0}, {10, 0});
  counter.countSegment({10, 0}, {10, 10});
  counter.countSegment({10, 10}, {0, 10});
  counter.countSegment({0, 10}, {0, 0});
  EXPECT_EQ(counter.getLocation(), Location::kInterior);
}

TEST(GeosimTest, ExtractSegmentsFromPolygonWithHole) {
  auto poly = Parse(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (3 3, 7 3, 7 7, 3 7, 3 3))");
  EXPECT_EQ(extractSegments(poly.get()).size(), 8u);  // 4 shell + 4 hole
}

TEST(GeosimWktTest, ParsesAllTypes) {
  EXPECT_EQ(Parse("POINT (1 2)")->getGeometryTypeId(),
            GeometryTypeId::kPoint);
  EXPECT_EQ(Parse("LINESTRING (0 0, 1 1)")->getGeometryTypeId(),
            GeometryTypeId::kLineString);
  EXPECT_EQ(Parse("POLYGON ((0 0, 1 0, 1 1, 0 0))")->getGeometryTypeId(),
            GeometryTypeId::kPolygon);
  EXPECT_EQ(Parse("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)))")
                ->getGeometryTypeId(),
            GeometryTypeId::kMultiPolygon);
  EXPECT_EQ(Parse("MULTILINESTRING ((0 0, 1 1))")->getGeometryTypeId(),
            GeometryTypeId::kMultiLineString);
  EXPECT_EQ(Parse("MULTIPOINT (1 2, 3 4)")->getGeometryTypeId(),
            GeometryTypeId::kMultiPoint);
}

TEST(GeosimWktTest, RejectsGarbage) {
  WKTReader reader(&Factory());
  EXPECT_FALSE(reader.read("BLOB (1 2)").ok());
  EXPECT_FALSE(reader.read("").ok());
}

TEST(GeosimWktTest, RejectsNonFiniteCoordinates) {
  // strtod accepts "inf"/"nan" (and hex floats); the reader must not.
  WKTReader reader(&Factory());
  EXPECT_FALSE(reader.read("POINT (inf 0)").ok());
  EXPECT_FALSE(reader.read("POINT (0 -inf)").ok());
  EXPECT_FALSE(reader.read("POINT (nan nan)").ok());
  EXPECT_FALSE(reader.read("LINESTRING (0 0, inf 1)").ok());
  EXPECT_FALSE(reader.read("POLYGON ((0 0, 1 0, nan 1, 0 0))").ok());
  EXPECT_FALSE(reader.read("POINT (1e999 0)").ok());
}

TEST(GeosimWktTest, RejectsTrailingGarbage) {
  // Every geometry type must reject trailing tokens, not just the
  // single-part ones (MULTI* previously accepted "MULTIPOINT (1 2) junk").
  WKTReader reader(&Factory());
  EXPECT_FALSE(reader.read("POINT (1 2) x").ok());
  EXPECT_FALSE(reader.read("MULTIPOINT (1 2) 7").ok());
  EXPECT_FALSE(reader.read("MULTIPOINT ((1 2)) )").ok());
  EXPECT_FALSE(reader.read("MULTILINESTRING ((0 0, 1 1)) x").ok());
  EXPECT_FALSE(
      reader.read("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0))) POINT (1 2)").ok());
  // Trailing whitespace is still fine.
  EXPECT_TRUE(reader.read("MULTIPOINT (1 2)  \t").ok());
}

// ---- Cross-library equivalence: geosim must agree exactly with geom. ----
//
// This is the load-bearing property for the paper reproduction: the two
// libraries are the same algorithms with different memory behaviour, so
// join results are identical regardless of which engine ran them.

class CrossLibraryProperty : public ::testing::TestWithParam<int> {};

std::string RandomStarPolygonWkt(cloudjoin::Rng* rng, double cx, double cy) {
  int n = 3 + static_cast<int>(rng->UniformInt(40));
  std::string wkt = "POLYGON ((";
  char buf[64];
  double x0 = 0, y0 = 0;
  for (int i = 0; i < n; ++i) {
    double theta = 6.283185307179586 * i / n;
    double r = rng->Uniform(2.0, 30.0);
    double x = cx + r * std::cos(theta);
    double y = cy + r * std::sin(theta);
    if (i == 0) {
      x0 = x;
      y0 = y;
    } else {
      wkt += ", ";
    }
    std::snprintf(buf, sizeof(buf), "%.10g %.10g", x, y);
    wkt += buf;
  }
  std::snprintf(buf, sizeof(buf), ", %.10g %.10g))", x0, y0);
  wkt += buf;
  return wkt;
}

TEST_P(CrossLibraryProperty, WithinAgrees) {
  cloudjoin::Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  WKTReader reader(&Factory());
  for (int trial = 0; trial < 60; ++trial) {
    std::string poly_wkt = RandomStarPolygonWkt(&rng, 0, 0);
    double px = rng.Uniform(-35, 35);
    double py = rng.Uniform(-35, 35);
    char point_wkt[80];
    std::snprintf(point_wkt, sizeof(point_wkt), "POINT (%.10g %.10g)", px, py);

    auto fast_poly = geom::ReadWkt(poly_wkt);
    auto fast_point = geom::ReadWkt(point_wkt);
    ASSERT_TRUE(fast_poly.ok());
    ASSERT_TRUE(fast_point.ok());
    bool fast = geom::Within(*fast_point, *fast_poly);

    auto slow_poly = reader.read(poly_wkt);
    auto slow_point = reader.read(point_wkt);
    ASSERT_TRUE(slow_poly.ok());
    ASSERT_TRUE(slow_point.ok());
    bool slow = (*slow_point)->within(slow_poly->get());

    EXPECT_EQ(fast, slow) << point_wkt << " vs " << poly_wkt;
  }
}

TEST_P(CrossLibraryProperty, DistanceAgrees) {
  cloudjoin::Rng rng(static_cast<uint64_t>(GetParam()) * 104729);
  WKTReader reader(&Factory());
  for (int trial = 0; trial < 60; ++trial) {
    int n = 2 + static_cast<int>(rng.UniformInt(6));
    std::string line_wkt = "LINESTRING (";
    char buf[64];
    for (int i = 0; i < n; ++i) {
      if (i > 0) line_wkt += ", ";
      std::snprintf(buf, sizeof(buf), "%.10g %.10g", rng.Uniform(-50, 50),
                    rng.Uniform(-50, 50));
      line_wkt += buf;
    }
    line_wkt += ")";
    char point_wkt[80];
    std::snprintf(point_wkt, sizeof(point_wkt), "POINT (%.10g %.10g)",
                  rng.Uniform(-60, 60), rng.Uniform(-60, 60));

    auto fast_line = geom::ReadWkt(line_wkt);
    auto fast_point = geom::ReadWkt(point_wkt);
    ASSERT_TRUE(fast_line.ok());
    ASSERT_TRUE(fast_point.ok());
    double fast = geom::Distance(*fast_point, *fast_line);

    auto slow_line = reader.read(line_wkt);
    auto slow_point = reader.read(point_wkt);
    ASSERT_TRUE(slow_line.ok());
    ASSERT_TRUE(slow_point.ok());
    double slow = (*slow_point)->distance(slow_line->get());

    EXPECT_DOUBLE_EQ(fast, slow) << point_wkt << " vs " << line_wkt;

    // And the thresholded predicate both ways around the exact distance.
    double d = fast;
    EXPECT_EQ(geom::WithinDistance(*fast_point, *fast_line, d + 0.001),
              (*slow_point)->isWithinDistance(slow_line->get(), d + 0.001));
  }
}

TEST_P(CrossLibraryProperty, IntersectsAgrees) {
  cloudjoin::Rng rng(static_cast<uint64_t>(GetParam()) * 1299709);
  WKTReader reader(&Factory());
  for (int trial = 0; trial < 40; ++trial) {
    std::string a_wkt =
        RandomStarPolygonWkt(&rng, rng.Uniform(-20, 20), rng.Uniform(-20, 20));
    std::string b_wkt =
        RandomStarPolygonWkt(&rng, rng.Uniform(-20, 20), rng.Uniform(-20, 20));
    auto fast_a = geom::ReadWkt(a_wkt);
    auto fast_b = geom::ReadWkt(b_wkt);
    ASSERT_TRUE(fast_a.ok());
    ASSERT_TRUE(fast_b.ok());
    auto slow_a = reader.read(a_wkt);
    auto slow_b = reader.read(b_wkt);
    ASSERT_TRUE(slow_a.ok());
    ASSERT_TRUE(slow_b.ok());
    EXPECT_EQ(geom::Intersects(*fast_a, *fast_b),
              (*slow_a)->intersects(slow_b->get()))
        << a_wkt << " vs " << b_wkt;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossLibraryProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace cloudjoin::geosim
