#include <gtest/gtest.h>

#include <cmath>

#include "geom/algorithms.h"
#include "geom/envelope.h"
#include "geom/geometry.h"

namespace cloudjoin::geom {
namespace {

TEST(EnvelopeTest, EmptyByDefault) {
  Envelope e;
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_FALSE(e.Intersects(Envelope(0, 0, 1, 1)));
  EXPECT_FALSE(e.Contains(Point{0, 0}));
  EXPECT_EQ(e.Area(), 0.0);
}

TEST(EnvelopeTest, ExpandToIncludePoints) {
  Envelope e;
  e.ExpandToInclude(Point{1, 2});
  e.ExpandToInclude(Point{-3, 5});
  EXPECT_EQ(e.min_x(), -3);
  EXPECT_EQ(e.max_x(), 1);
  EXPECT_EQ(e.min_y(), 2);
  EXPECT_EQ(e.max_y(), 5);
  EXPECT_EQ(e.Width(), 4);
  EXPECT_EQ(e.Height(), 3);
}

TEST(EnvelopeTest, IntersectsAndContains) {
  Envelope a(0, 0, 10, 10);
  Envelope b(5, 5, 15, 15);
  Envelope c(11, 11, 12, 12);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(Point{10, 10}));  // boundary inclusive
  EXPECT_FALSE(a.Contains(Point{10.001, 10}));
  EXPECT_TRUE(a.Contains(Envelope(1, 1, 9, 9)));
  EXPECT_FALSE(a.Contains(b));
}

TEST(EnvelopeTest, TouchingEdgesIntersect) {
  Envelope a(0, 0, 1, 1);
  Envelope b(1, 0, 2, 1);
  EXPECT_TRUE(a.Intersects(b));
}

TEST(EnvelopeTest, ExpandBy) {
  Envelope e(0, 0, 2, 2);
  e.ExpandBy(1.5);
  EXPECT_EQ(e.min_x(), -1.5);
  EXPECT_EQ(e.max_y(), 3.5);
}

TEST(EnvelopeTest, DistanceToPoint) {
  Envelope e(0, 0, 10, 10);
  EXPECT_EQ(e.Distance(Point{5, 5}), 0.0);
  EXPECT_EQ(e.Distance(Point{13, 5}), 3.0);
  EXPECT_DOUBLE_EQ(e.Distance(Point{13, 14}), 5.0);  // 3-4-5
}

TEST(EnvelopeTest, DistanceToEnvelope) {
  Envelope a(0, 0, 1, 1);
  Envelope b(4, 5, 6, 7);
  EXPECT_DOUBLE_EQ(a.Distance(b), 5.0);  // dx=3, dy=4
  EXPECT_EQ(a.Distance(Envelope(0.5, 0.5, 2, 2)), 0.0);
}

TEST(GeometryTest, PointStructure) {
  Geometry p = Geometry::MakePoint(3, 4);
  EXPECT_EQ(p.type(), GeometryType::kPoint);
  EXPECT_EQ(p.NumCoords(), 1);
  EXPECT_EQ(p.NumParts(), 1);
  EXPECT_EQ(p.FirstPoint().x, 3);
  EXPECT_EQ(p.envelope(), Envelope(3, 4, 3, 4));
}

TEST(GeometryTest, LineStringStructure) {
  Geometry l = Geometry::MakeLineString({{0, 0}, {1, 1}, {2, 0}});
  EXPECT_EQ(l.type(), GeometryType::kLineString);
  EXPECT_EQ(l.NumCoords(), 3);
  EXPECT_EQ(l.Ring(0, 0).size(), 3u);
}

TEST(GeometryTest, PolygonAutoCloses) {
  Geometry poly = Geometry::MakePolygon({{{0, 0}, {4, 0}, {4, 4}, {0, 4}}});
  EXPECT_EQ(poly.NumCoords(), 5);  // closing vertex added
  auto ring = poly.Ring(0, 0);
  EXPECT_EQ(ring.front(), ring.back());
}

TEST(GeometryTest, PolygonWithHoles) {
  Geometry poly = Geometry::MakePolygon(
      {{{0, 0}, {10, 0}, {10, 10}, {0, 10}},
       {{2, 2}, {4, 2}, {4, 4}, {2, 4}}});
  EXPECT_EQ(poly.NumParts(), 1);
  EXPECT_EQ(poly.NumRings(0), 2);
  EXPECT_EQ(poly.Ring(0, 1).size(), 5u);
}

TEST(GeometryTest, MultiPolygonStructure) {
  Geometry mp = Geometry::MakeMultiPolygon(
      {{{{0, 0}, {1, 0}, {1, 1}}}, {{{5, 5}, {6, 5}, {6, 6}}}});
  EXPECT_EQ(mp.type(), GeometryType::kMultiPolygon);
  EXPECT_EQ(mp.NumParts(), 2);
  EXPECT_EQ(mp.NumRings(0), 1);
  EXPECT_EQ(mp.NumRings(1), 1);
}

TEST(GeometryTest, EmptyGeometry) {
  Geometry g(GeometryType::kPolygon);
  EXPECT_TRUE(g.IsEmpty());
  EXPECT_TRUE(g.envelope().IsEmpty());
  EXPECT_EQ(g.NumParts(), 0);
}

TEST(GeometryTest, Equality) {
  Geometry a = Geometry::MakePoint(1, 2);
  Geometry b = Geometry::MakePoint(1, 2);
  Geometry c = Geometry::MakePoint(1, 3);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(AlgorithmsTest, SignedRingArea) {
  // CCW unit square.
  std::vector<Point> ccw = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  EXPECT_DOUBLE_EQ(SignedRingArea(ccw), 1.0);
  EXPECT_TRUE(IsCcw(ccw));
  std::vector<Point> cw = {{0, 0}, {0, 1}, {1, 1}, {1, 0}};
  EXPECT_DOUBLE_EQ(SignedRingArea(cw), -1.0);
  EXPECT_FALSE(IsCcw(cw));
}

TEST(AlgorithmsTest, AreaWithHole) {
  Geometry poly = Geometry::MakePolygon(
      {{{0, 0}, {10, 0}, {10, 10}, {0, 10}},
       {{2, 2}, {4, 2}, {4, 4}, {2, 4}}});
  EXPECT_DOUBLE_EQ(Area(poly), 100.0 - 4.0);
}

TEST(AlgorithmsTest, AreaOfMultiPolygon) {
  Geometry mp = Geometry::MakeMultiPolygon(
      {{{{0, 0}, {2, 0}, {2, 2}, {0, 2}}}, {{{5, 5}, {8, 5}, {8, 8}, {5, 8}}}});
  EXPECT_DOUBLE_EQ(Area(mp), 4.0 + 9.0);
}

TEST(AlgorithmsTest, AreaOfNonPolygonIsZero) {
  EXPECT_EQ(Area(Geometry::MakePoint(1, 1)), 0.0);
  EXPECT_EQ(Area(Geometry::MakeLineString({{0, 0}, {5, 0}})), 0.0);
}

TEST(AlgorithmsTest, Length) {
  Geometry l = Geometry::MakeLineString({{0, 0}, {3, 4}, {3, 10}});
  EXPECT_DOUBLE_EQ(Length(l), 5.0 + 6.0);
  // Polygon perimeter includes the closing edge.
  Geometry sq = Geometry::MakePolygon({{{0, 0}, {1, 0}, {1, 1}, {0, 1}}});
  EXPECT_DOUBLE_EQ(Length(sq), 4.0);
}

TEST(AlgorithmsTest, Centroid) {
  Geometry l = Geometry::MakeLineString({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  Point c = Centroid(l);
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);
}

}  // namespace
}  // namespace cloudjoin::geom
