// Quickstart: the smallest end-to-end CloudJoin program.
//
// Builds a tiny point and polygon dataset in the simulated DFS, then runs
// the same indexed broadcast spatial join through all three prototype
// systems — the core-library API (SpatialSpark style), the SQL engine
// (ISP-MC style), and the standalone implementation — and checks that all
// agree.
//
//   ./quickstart

#include <algorithm>
#include <cstdio>

#include "data/generators.h"
#include "dfs/sim_file_system.h"
#include "join/broadcast_spatial_join.h"
#include "join/isp_mc_system.h"
#include "join/spatial_spark_system.h"
#include "join/standalone_mc.h"

using namespace cloudjoin;

int main() {
  // 1. A 4-node "cluster" file system with small blocks.
  dfs::SimFileSystem fs(/*num_nodes=*/4, /*block_size=*/16 * 1024);

  // 2. Synthetic NYC data: 5,000 taxi pickups and a 20x20 census grid.
  CLOUDJOIN_CHECK_OK(
      fs.WriteTextFile("/data/pickups.tsv", data::GenerateTaxiTrips(5000, 1)));
  CLOUDJOIN_CHECK_OK(fs.WriteTextFile("/data/blocks.tsv",
                                      data::GenerateCensusBlocks(20, 20, 2)));
  join::TableInput pickups{"/data/pickups.tsv", '\t', /*id_column=*/0,
                           /*geometry_column=*/1};
  join::TableInput blocks{"/data/blocks.tsv", '\t', 0, 1};

  // 3. SpatialSpark: the RDD pipeline with a broadcast STR-tree.
  join::SpatialSparkSystem spark(&fs, /*num_partitions=*/8);
  auto spark_run =
      spark.Join(pickups, blocks, join::SpatialPredicate::Within());
  CLOUDJOIN_CHECK(spark_run.ok()) << spark_run.status();
  std::printf("SpatialSpark matched %zu (pickup, block) pairs across %zu "
              "stages\n",
              spark_run->pairs.size(), spark_run->stages.size());

  // 4. ISP-MC: the same join as SQL.
  join::IspMcSystem isp(&fs);
  auto isp_run = isp.Join(pickups, blocks, join::SpatialPredicate::Within());
  CLOUDJOIN_CHECK(isp_run.ok()) << isp_run.status();
  std::printf("ISP-MC executed: %s\n  -> %zu pairs, plan:\n%s",
              isp_run->sql.c_str(), isp_run->pairs.size(),
              isp_run->metrics.explain.c_str());

  // 5. Standalone oracle.
  join::StandaloneMc standalone(&fs);
  auto sa_run =
      standalone.Join(pickups, blocks, join::SpatialPredicate::Within());
  CLOUDJOIN_CHECK(sa_run.ok()) << sa_run.status();

  // 6. All three agree.
  auto sorted = [](std::vector<join::IdPair> p) {
    std::sort(p.begin(), p.end());
    return p;
  };
  CLOUDJOIN_CHECK(sorted(spark_run->pairs) == sorted(isp_run->pairs));
  CLOUDJOIN_CHECK(sorted(spark_run->pairs) == sorted(sa_run->pairs));
  std::printf("all three systems agree on %zu pairs — quickstart OK\n",
              spark_run->pairs.size());
  return 0;
}
