// Nearest streets: the paper's NearestD scenario — for each taxi pickup,
// find all street polylines within D feet (taxi-lion). Sweeps D to show
// how the distance threshold drives candidate counts and match rates, and
// verifies the indexed result against the nested-loop baseline on a
// sample.
//
//   ./nearest_streets [--points=N] [--streets=S]

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/flags.h"
#include "common/strings.h"
#include "data/generators.h"
#include "dfs/sim_file_system.h"
#include "geom/wkt.h"
#include "join/broadcast_spatial_join.h"
#include "join/standalone_mc.h"

using namespace cloudjoin;

namespace {

// Loads an (id, geometry) vector from a generated TSV file.
std::vector<join::IdGeometry> LoadGeometries(dfs::SimFileSystem* fs,
                                             const std::string& path,
                                             int64_t limit) {
  auto file = fs->GetFile(path);
  CLOUDJOIN_CHECK(file.ok());
  std::vector<join::IdGeometry> out;
  dfs::LineRecordReader reader((*file)->data(), 0, (*file)->size());
  std::string_view line;
  while (reader.Next(&line) &&
         (limit < 0 || static_cast<int64_t>(out.size()) < limit)) {
    auto fields = StrSplit(line, '\t');
    auto id = ParseInt64(fields[0]);
    auto g = geom::ReadWkt(fields[1]);
    CLOUDJOIN_CHECK(id.ok());
    CLOUDJOIN_CHECK(g.ok());
    out.push_back(join::IdGeometry{*id, std::move(g).value()});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t points = flags.GetInt("points", 20000);
  const int64_t streets = flags.GetInt("streets", 50000);

  dfs::SimFileSystem fs(4, 64 * 1024);
  CLOUDJOIN_CHECK_OK(
      fs.WriteTextFile("/data/taxi.tsv", data::GenerateTaxiTrips(points, 31)));
  CLOUDJOIN_CHECK_OK(
      fs.WriteTextFile("/data/lion.tsv", data::GenerateStreets(streets, 32)));

  std::vector<join::IdGeometry> pickups =
      LoadGeometries(&fs, "/data/taxi.tsv", -1);
  std::vector<join::IdGeometry> lion =
      LoadGeometries(&fs, "/data/lion.tsv", -1);

  std::printf("taxi-lion NearestD sweep: %zu pickups x %zu streets\n\n",
              pickups.size(), lion.size());
  std::printf("%8s %12s %14s %16s\n", "D (ft)", "pairs", "pairs/pickup",
              "pickups matched");
  for (double d : {25.0, 50.0, 100.0, 250.0, 500.0}) {
    Counters counters;
    auto pairs = join::BroadcastSpatialJoin(
        pickups, lion, join::SpatialPredicate::NearestD(d), &counters);
    std::map<int64_t, bool> matched;
    for (const auto& [pickup, street] : pairs) matched[pickup] = true;
    std::printf("%8.0f %12zu %14.2f %15.1f%%\n", d, pairs.size(),
                static_cast<double>(pairs.size()) / pickups.size(),
                100.0 * matched.size() / pickups.size());
  }

  // Oracle check on a sample: indexed join == nested loop.
  std::vector<join::IdGeometry> sample(pickups.begin(),
                                       pickups.begin() + 500);
  // Stride over the street list so the sample spans the whole city (the
  // generator emits streets in grid order).
  std::vector<join::IdGeometry> street_sample;
  const size_t stride = std::max<size_t>(1, lion.size() / 2000);
  for (size_t i = 0; i < lion.size(); i += stride) {
    street_sample.push_back(lion[i]);
  }
  auto indexed = join::BroadcastSpatialJoin(
      sample, street_sample, join::SpatialPredicate::NearestD(100.0));
  auto oracle = join::NestedLoopSpatialJoin(
      sample, street_sample, join::SpatialPredicate::NearestD(100.0));
  std::sort(indexed.begin(), indexed.end());
  std::sort(oracle.begin(), oracle.end());
  CLOUDJOIN_CHECK(indexed == oracle);
  std::printf("\nindexed join verified against nested-loop oracle on a "
              "500x2000 sample (%zu pairs)\n",
              indexed.size());
  return 0;
}
