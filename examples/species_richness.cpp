// Species richness: the paper's biodiversity scenario — map GBIF-style
// species occurrence records to WWF-style ecoregions (G10M-wwf, Within)
// and compute per-ecoregion species richness (number of distinct species),
// the quantity conservation planners derive from this join.
//
//   ./species_richness [--points=N] [--regions=R] [--top=K]

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "common/flags.h"
#include "common/strings.h"
#include "data/generators.h"
#include "dfs/sim_file_system.h"
#include "join/spatial_spark_system.h"

using namespace cloudjoin;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t points = flags.GetInt("points", 30000);
  const int regions = static_cast<int>(flags.GetInt("regions", 3000));
  const int top = static_cast<int>(flags.GetInt("top", 10));

  dfs::SimFileSystem fs(4, 64 * 1024);
  CLOUDJOIN_CHECK_OK(fs.WriteTextFile(
      "/data/g10m.tsv", data::GenerateSpeciesOccurrences(points, 21)));
  CLOUDJOIN_CHECK_OK(fs.WriteTextFile(
      "/data/wwf.tsv", data::GenerateEcoregions(regions, 22)));
  join::TableInput occurrences{"/data/g10m.tsv", '\t', 0, 1};
  join::TableInput ecoregions{"/data/wwf.tsv", '\t', 0, 1};

  // Load the species attribute column (occurrence id -> species label).
  std::vector<std::string> species_of;
  {
    auto file = fs.GetFile("/data/g10m.tsv");
    CLOUDJOIN_CHECK(file.ok());
    dfs::LineRecordReader reader((*file)->data(), 0, (*file)->size());
    std::string_view line;
    while (reader.Next(&line)) {
      auto fields = StrSplit(line, '\t');
      species_of.emplace_back(fields[2]);
    }
  }

  // The join: occurrence-in-ecoregion.
  join::SpatialSparkSystem spark(&fs, 16);
  auto run =
      spark.Join(occurrences, ecoregions, join::SpatialPredicate::Within());
  CLOUDJOIN_CHECK(run.ok()) << run.status();

  // Richness = |distinct species| per ecoregion.
  std::map<int64_t, std::set<std::string>> species_per_region;
  for (const auto& [occurrence_id, region_id] : run->pairs) {
    species_per_region[region_id].insert(
        species_of[static_cast<size_t>(occurrence_id)]);
  }
  std::vector<std::pair<int64_t, int64_t>> ranked;  // (richness, region)
  int64_t total_richness = 0;
  for (const auto& [region, species] : species_per_region) {
    ranked.emplace_back(static_cast<int64_t>(species.size()), region);
    total_richness += static_cast<int64_t>(species.size());
  }
  std::sort(ranked.rbegin(), ranked.rend());

  std::printf(
      "G10M-wwf: %lld occurrences x %d ecoregions -> %zu matches, "
      "%zu ecoregions populated\n\n",
      static_cast<long long>(points), regions, run->pairs.size(),
      species_per_region.size());
  std::printf("top %d ecoregions by species richness:\n", top);
  for (int i = 0; i < top && i < static_cast<int>(ranked.size()); ++i) {
    std::printf("  #%2d ecoregion %6lld: %5lld distinct species\n", i + 1,
                static_cast<long long>(ranked[i].second),
                static_cast<long long>(ranked[i].first));
  }
  std::printf("\nmean richness over populated regions: %.1f\n",
              static_cast<double>(total_richness) /
                  static_cast<double>(species_per_region.size()));
  return 0;
}
