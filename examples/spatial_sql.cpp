// Spatial SQL tour: drives the ISP-MC engine the way an analyst would —
// EXPLAIN plans, scalar ST_* functions, predicates, spatial joins with
// extra conjuncts, and aggregation over join results (the paper's Fig. 1
// interface).
//
//   ./spatial_sql

#include <cstdio>

#include "data/generators.h"
#include "dfs/sim_file_system.h"
#include "impala/runtime.h"
#include "join/isp_mc_system.h"

using namespace cloudjoin;

namespace {

void RunAndPrint(impala::ImpalaRuntime* runtime, const std::string& sql,
                 int max_rows = 5) {
  std::printf("sql> %s\n", sql.c_str());
  auto result = runtime->Execute(sql);
  if (!result.ok()) {
    std::printf("  ERROR: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("  ");
  for (const auto& name : result->column_names) {
    std::printf("%-18s", name.c_str());
  }
  std::printf("\n");
  int shown = 0;
  for (const impala::Row& row : result->rows) {
    if (shown++ >= max_rows) break;
    std::printf("  ");
    for (const impala::Value& v : row) {
      std::string text = impala::ValueToString(v);
      if (text.size() > 16) text = text.substr(0, 13) + "...";
      std::printf("%-18s", text.c_str());
    }
    std::printf("\n");
  }
  if (static_cast<int>(result->rows.size()) > max_rows) {
    std::printf("  ... (%zu rows total)\n", result->rows.size());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  dfs::SimFileSystem fs(4, 64 * 1024);
  CLOUDJOIN_CHECK_OK(
      fs.WriteTextFile("/data/taxi.tsv", data::GenerateTaxiTrips(20000, 51)));
  CLOUDJOIN_CHECK_OK(fs.WriteTextFile("/data/nycb.tsv",
                                      data::GenerateCensusBlocks(30, 30, 52)));

  join::IspMcSystem isp(&fs);
  CLOUDJOIN_CHECK_OK(
      isp.RegisterTable("taxi", {"/data/taxi.tsv", '\t', 0, 1}).status());
  CLOUDJOIN_CHECK_OK(
      isp.RegisterTable("nycb", {"/data/nycb.tsv", '\t', 0, 1}).status());
  impala::ImpalaRuntime* runtime = isp.runtime();

  // The paper's Fig. 1 query, explained then executed.
  const std::string fig1 =
      "SELECT taxi.id, nycb.id FROM taxi SPATIAL JOIN nycb "
      "WHERE ST_WITHIN(taxi.geom, nycb.geom)";
  auto explain = runtime->Explain(fig1);
  CLOUDJOIN_CHECK(explain.ok());
  std::printf("sql> EXPLAIN %s\n%s\n", fig1.c_str(), explain->c_str());
  RunAndPrint(runtime, fig1, 3);

  RunAndPrint(runtime, "SELECT COUNT(*) FROM taxi");
  RunAndPrint(runtime,
              "SELECT id, ST_X(geom) AS x, ST_Y(geom) AS y FROM taxi "
              "WHERE id < 3");
  RunAndPrint(runtime,
              "SELECT COUNT(*) AS close_to_center FROM taxi WHERE "
              "ST_DISTANCE(geom, 'POINT (990000 200000)') < 20000");
  RunAndPrint(runtime,
              "SELECT nycb.c2, COUNT(*) AS pickups FROM taxi SPATIAL JOIN "
              "nycb WHERE ST_WITHIN(taxi.geom, nycb.geom) "
              "GROUP BY nycb.c2 LIMIT 8");
  RunAndPrint(runtime,
              "SELECT taxi.id, nycb.id FROM taxi SPATIAL JOIN nycb "
              "WHERE ST_WITHIN(taxi.geom, nycb.geom) AND taxi.c2 > '4' "
              "LIMIT 5");
  // Top-N analytics: busiest census blocks straight from SQL.
  RunAndPrint(runtime,
              "SELECT nycb.id, COUNT(*) AS pickups FROM taxi SPATIAL JOIN "
              "nycb WHERE ST_WITHIN(taxi.geom, nycb.geom) GROUP BY nycb.id "
              "HAVING COUNT(*) > 10 ORDER BY COUNT(*) DESC LIMIT 5");
  // Distinct passenger-count values per block zone label.
  RunAndPrint(runtime,
              "SELECT nycb.c2, COUNT(DISTINCT taxi.c2) AS pax_kinds "
              "FROM taxi SPATIAL JOIN nycb "
              "WHERE ST_WITHIN(taxi.geom, nycb.geom) GROUP BY nycb.c2 "
              "ORDER BY nycb.c2 LIMIT 5");
  // Error handling is part of the interface too.
  RunAndPrint(runtime, "SELECT missing_column FROM taxi");
  return 0;
}
