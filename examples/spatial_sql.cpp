// Spatial SQL tour: drives the query service the way an analyst's client
// would — EXPLAIN plans, scalar ST_* functions, predicates, spatial joins
// with extra conjuncts, and aggregation over join results (the paper's
// Fig. 1 interface). All queries flow through `server::QueryService`, so
// the session is admission-controlled and repeated spatial joins against
// the same right side reuse the cached broadcast index (watch the
// `cache hit` column and the service stats at exit).
//
//   ./spatial_sql

#include <cstdio>

#include "common/histogram.h"
#include "data/generators.h"
#include "dfs/sim_file_system.h"
#include "impala/runtime.h"
#include "server/query_service.h"

using namespace cloudjoin;

namespace {

void RunAndPrint(server::QueryService* service, server::Session* session,
                 const std::string& sql, int max_rows = 5) {
  std::printf("sql> %s\n", sql.c_str());
  auto response = service->Execute(session, sql);
  if (!response.ok()) {
    std::printf("  ERROR: %s\n\n", response.status().ToString().c_str());
    return;
  }
  const impala::QueryResult& result = response->result;
  std::printf("  ");
  for (const auto& name : result.column_names) {
    std::printf("%-18s", name.c_str());
  }
  std::printf("\n");
  int shown = 0;
  for (const impala::Row& row : result.rows) {
    if (shown++ >= max_rows) break;
    std::printf("  ");
    for (const impala::Value& v : row) {
      std::string text = impala::ValueToString(v);
      if (text.size() > 16) text = text.substr(0, 13) + "...";
      std::printf("%-18s", text.c_str());
    }
    std::printf("\n");
  }
  if (static_cast<int>(result.rows.size()) > max_rows) {
    std::printf("  ... (%zu rows total)\n", result.rows.size());
  }
  std::printf("  [query %lld: %s%s]\n\n",
              static_cast<long long>(response->query_id),
              FormatDuration(response->total_seconds).c_str(),
              response->index_cache_hit ? ", broadcast-index cache hit" : "");
}

}  // namespace

int main() {
  dfs::SimFileSystem fs(4, 64 * 1024);
  CLOUDJOIN_CHECK_OK(
      fs.WriteTextFile("/data/taxi.tsv", data::GenerateTaxiTrips(20000, 51)));
  CLOUDJOIN_CHECK_OK(fs.WriteTextFile("/data/nycb.tsv",
                                      data::GenerateCensusBlocks(30, 30, 52)));

  server::QueryService service(&fs);
  CLOUDJOIN_CHECK_OK(
      service.RegisterTable("taxi", {"/data/taxi.tsv", '\t', 0, 1}).status());
  CLOUDJOIN_CHECK_OK(
      service.RegisterTable("nycb", {"/data/nycb.tsv", '\t', 0, 1}).status());
  server::Session* session = service.CreateSession();

  // The paper's Fig. 1 query, explained then executed.
  const std::string fig1 =
      "SELECT taxi.id, nycb.id FROM taxi SPATIAL JOIN nycb "
      "WHERE ST_WITHIN(taxi.geom, nycb.geom)";
  auto explain = service.system()->runtime()->Explain(fig1);
  CLOUDJOIN_CHECK(explain.ok());
  std::printf("sql> EXPLAIN %s\n%s\n", fig1.c_str(), explain->c_str());
  RunAndPrint(&service, session, fig1, 3);

  RunAndPrint(&service, session, "SELECT COUNT(*) FROM taxi");
  RunAndPrint(&service, session,
              "SELECT id, ST_X(geom) AS x, ST_Y(geom) AS y FROM taxi "
              "WHERE id < 3");
  RunAndPrint(&service, session,
              "SELECT COUNT(*) AS close_to_center FROM taxi WHERE "
              "ST_DISTANCE(geom, 'POINT (990000 200000)') < 20000");
  // The joins below reuse the broadcast index the Fig. 1 query built.
  RunAndPrint(&service, session,
              "SELECT nycb.c2, COUNT(*) AS pickups FROM taxi SPATIAL JOIN "
              "nycb WHERE ST_WITHIN(taxi.geom, nycb.geom) "
              "GROUP BY nycb.c2 LIMIT 8");
  RunAndPrint(&service, session,
              "SELECT taxi.id, nycb.id FROM taxi SPATIAL JOIN nycb "
              "WHERE ST_WITHIN(taxi.geom, nycb.geom) AND taxi.c2 > '4' "
              "LIMIT 5");
  // Top-N analytics: busiest census blocks straight from SQL.
  RunAndPrint(&service, session,
              "SELECT nycb.id, COUNT(*) AS pickups FROM taxi SPATIAL JOIN "
              "nycb WHERE ST_WITHIN(taxi.geom, nycb.geom) GROUP BY nycb.id "
              "HAVING COUNT(*) > 10 ORDER BY COUNT(*) DESC LIMIT 5");
  // Distinct passenger-count values per block zone label.
  RunAndPrint(&service, session,
              "SELECT nycb.c2, COUNT(DISTINCT taxi.c2) AS pax_kinds "
              "FROM taxi SPATIAL JOIN nycb "
              "WHERE ST_WITHIN(taxi.geom, nycb.geom) GROUP BY nycb.c2 "
              "ORDER BY nycb.c2 LIMIT 5");
  // Error handling is part of the interface too.
  RunAndPrint(&service, session, "SELECT missing_column FROM taxi");

  std::printf("--- service stats at exit ---\n%s\n",
              service.GetStats().ToString().c_str());
  return 0;
}
