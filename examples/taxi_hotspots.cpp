// Taxi hotspots: the paper's motivating urban-analytics scenario — join
// taxi pickup points with census blocks (taxi-nycb, Within) and rank the
// busiest blocks, using the SpatialSpark pipeline for the join and the
// SQL engine for the aggregation (GROUP BY zone).
//
//   ./taxi_hotspots [--points=N] [--grid=G] [--top=K]

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/flags.h"
#include "data/generators.h"
#include "dfs/sim_file_system.h"
#include "impala/runtime.h"
#include "join/isp_mc_system.h"
#include "join/spatial_spark_system.h"

using namespace cloudjoin;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t points = flags.GetInt("points", 40000);
  const int grid = static_cast<int>(flags.GetInt("grid", 40));
  const int top = static_cast<int>(flags.GetInt("top", 10));

  dfs::SimFileSystem fs(4, 64 * 1024);
  CLOUDJOIN_CHECK_OK(
      fs.WriteTextFile("/data/taxi.tsv", data::GenerateTaxiTrips(points, 7)));
  CLOUDJOIN_CHECK_OK(fs.WriteTextFile(
      "/data/nycb.tsv", data::GenerateCensusBlocks(grid, grid, 8)));
  join::TableInput taxi{"/data/taxi.tsv", '\t', 0, 1};
  join::TableInput nycb{"/data/nycb.tsv", '\t', 0, 1};

  // --- Path 1: core library (SpatialSpark style) + app-side ranking. ---
  join::SpatialSparkSystem spark(&fs, 16);
  auto run = spark.Join(taxi, nycb, join::SpatialPredicate::Within());
  CLOUDJOIN_CHECK(run.ok()) << run.status();

  std::map<int64_t, int64_t> pickups_per_block;
  for (const auto& [pickup_id, block_id] : run->pairs) {
    ++pickups_per_block[block_id];
  }
  std::vector<std::pair<int64_t, int64_t>> ranked;  // (count, block)
  for (const auto& [block, count] : pickups_per_block) {
    ranked.emplace_back(count, block);
  }
  std::sort(ranked.rbegin(), ranked.rend());

  std::printf("taxi-nycb: %lld pickups x %d blocks -> %zu matches "
              "(%.1f%% of pickups inside a block)\n\n",
              static_cast<long long>(points), grid * grid, run->pairs.size(),
              100.0 * run->pairs.size() / points);
  std::printf("top %d busiest census blocks (core-library path):\n", top);
  for (int i = 0; i < top && i < static_cast<int>(ranked.size()); ++i) {
    std::printf("  #%2d block %6lld: %6lld pickups\n", i + 1,
                static_cast<long long>(ranked[i].second),
                static_cast<long long>(ranked[i].first));
  }

  // --- Path 2: the same answer as one SQL statement (ISP-MC style). ---
  join::IspMcSystem isp(&fs);
  CLOUDJOIN_CHECK_OK(isp.RegisterTable("taxi", taxi).status());
  CLOUDJOIN_CHECK_OK(isp.RegisterTable("nycb", nycb).status());
  auto result = isp.runtime()->Execute(
      "SELECT nycb.id, COUNT(*) AS pickups FROM taxi SPATIAL JOIN nycb "
      "WHERE ST_WITHIN(taxi.geom, nycb.geom) GROUP BY nycb.id");
  CLOUDJOIN_CHECK(result.ok()) << result.status();

  // Cross-check the two paths block by block.
  int64_t checked = 0;
  for (const impala::Row& row : result->rows) {
    int64_t block = std::get<int64_t>(row[0]);
    int64_t count = std::get<int64_t>(row[1]);
    CLOUDJOIN_CHECK(pickups_per_block[block] == count)
        << "block " << block << ": core=" << pickups_per_block[block]
        << " sql=" << count;
    ++checked;
  }
  std::printf("\nSQL path (GROUP BY nycb.id) agrees on all %lld non-empty "
              "blocks\n",
              static_cast<long long>(checked));
  return 0;
}
